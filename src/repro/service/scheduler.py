"""The batched query service: device pool, engine cache, adaptive
selection, degradation.

:class:`QueryService` is the serving-layer composition of everything the
repository already knows how to do:

* **Index caching** — engines are built once per (database, method,
  parameters) and reused across batches (:mod:`repro.service.cache`);
  the index build is the paper's offline phase and is excluded from
  modeled response time, but its wall cost is reported per request.
* **Adaptive engine selection** — ``method="auto"`` asks the cost-based
  planner (:func:`repro.core.planner.plan_search`) to rank engines for
  the batch's workload and uses the winner.
* **Graceful degradation** — if planning or index construction fails
  (e.g. the index does not fit device memory), the request falls back to
  the index-free ``cpu_scan`` baseline and the response says so.
* **Device pool** — a :class:`DevicePool` of virtual GPUs with modeled
  per-lane clocks: concurrent batches queue on the lane their engine is
  homed on, and a request's ``queue_wait_s`` is the modeled time it
  spent waiting for its device.  ``shards > 1`` partitions the database
  across lanes (reusing :mod:`repro.distributed.partition`) and runs the
  shards concurrently.

Scheduling uses the *modeled* clock, consistent with the rest of the
repository: wall time measures the simulator, modeled time measures the
machine the paper ran on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.planner import plan_search
from ..core.result import ResultSet
from ..core.search import ENGINE_REGISTRY, SearchOutcome
from ..core.types import SegmentArray
from ..distributed.partition import partition_database
from ..engines.base import GpuEngineBase, RetryPolicy
from ..engines.config import ConfigError
from ..gpu.costmodel import CostBreakdown, CpuCostModel, GpuCostModel
from ..gpu.device import DeviceSpec, TESLA_C2075, VirtualGPU
from ..gpu.profiler import CpuSearchProfile, RequestMetrics, SearchProfile
from ..obs import Telemetry
from .cache import (CacheEntry, EngineCache, canonical_params,
                    database_fingerprint)
from .requests import SearchRequest, SearchResponse

__all__ = ["DeviceLane", "DevicePool", "QueryService"]

#: planner knobs a request may override through ``params`` hints.
_PLANNER_HINTS = ("num_bins", "num_subbins", "cells_per_dim",
                  "segments_per_mbb")


@dataclass
class DeviceLane:
    """One device's modeled timeline and residency accounting."""

    index: int
    #: modeled time at which the lane next becomes free.
    busy_until: float = 0.0
    #: device bytes held by engines homed on this lane.
    resident_bytes: int = 0


class DevicePool:
    """A pool of identical virtual GPUs plus one host lane.

    Engines are *homed* on the least-loaded lane when built and stay
    there (indexes are device-resident; migrating one would be a
    rebuild).  Each engine still owns a private :class:`VirtualGPU` —
    real devices isolate contexts, and sharing one memory manager would
    collide allocation names — so a lane models the *timeline and
    capacity* of a card, not a shared address space.
    """

    #: lane index used for CPU engines (host execution).
    HOST_LANE = -1

    def __init__(self, num_devices: int = 1,
                 spec: DeviceSpec = TESLA_C2075) -> None:
        if num_devices < 1:
            raise ValueError("pool needs at least one device")
        self.spec = spec
        self.lanes = [DeviceLane(i) for i in range(num_devices)]
        self.host = DeviceLane(self.HOST_LANE)

    @property
    def num_devices(self) -> int:
        return len(self.lanes)

    @property
    def total_mem_bytes(self) -> int:
        return self.num_devices * self.spec.global_mem_bytes

    def lane(self, index: int) -> DeviceLane:
        return self.host if index == self.HOST_LANE else self.lanes[index]

    def home_for(self, nbytes: int) -> DeviceLane:
        """Pick the lane with the most free memory for a new engine."""
        return min(self.lanes, key=lambda lane: lane.resident_bytes)

    def place(self, lane_index: int, nbytes: int) -> None:
        self.lane(lane_index).resident_bytes += nbytes

    def release(self, lane_index: int, nbytes: int) -> None:
        self.lane(lane_index).resident_bytes -= nbytes

    def busiest_until(self) -> float:
        """Latest modeled busy_until across all lanes (incl. host)."""
        return max(self.host.busy_until,
                   *(lane.busy_until for lane in self.lanes))


@dataclass
class _ShardRun:
    """One shard's contribution to a (possibly sharded) execution."""

    entry: CacheEntry
    results: ResultSet
    profile: SearchProfile | CpuSearchProfile
    modeled: CostBreakdown


class QueryService:
    """Batched distance-threshold query service over one database.

    Parameters
    ----------
    database:
        The entry-segment database all requests search against.
    num_devices:
        Size of the simulated GPU pool.
    spec:
        Device model for every pool GPU (default: the paper's C2075).
    gpu_model, cpu_model:
        Cost models used to price profiles.
    cache_bytes:
        Engine-cache budget; defaults to the pool's aggregate device
        memory.
    planner_sample:
        Query-sample size handed to the planner for ``method="auto"``.
    retry:
        Overflow retry policy installed into every GPU engine the
        service builds (None = the engines' default policy).
    telemetry:
        The :class:`~repro.obs.Telemetry` hub the service records
        into (None = a fresh enabled hub).  Pass
        ``Telemetry(enabled=False)`` to switch instrumentation off.
    """

    FALLBACK_METHOD = "cpu_scan"

    def __init__(self, database: SegmentArray, *,
                 num_devices: int = 1,
                 spec: DeviceSpec = TESLA_C2075,
                 gpu_model: GpuCostModel | None = None,
                 cpu_model: CpuCostModel | None = None,
                 cache_bytes: int | None = None,
                 planner_sample: int = 32,
                 retry: RetryPolicy | None = None,
                 telemetry: Telemetry | None = None) -> None:
        if len(database) == 0:
            raise ValueError("service needs a non-empty database")
        self.database = database
        self.pool = DevicePool(num_devices, spec)
        self.gpu_model = gpu_model or GpuCostModel(spec=spec)
        self.cpu_model = cpu_model or CpuCostModel()
        self.cache = EngineCache(
            cache_bytes if cache_bytes is not None
            else self.pool.total_mem_bytes,
            on_evict=self._on_evict)
        self.planner_sample = planner_sample
        self.retry = retry
        self.fingerprint = database_fingerprint(database)
        #: the unified telemetry hub: metrics registry, tracer,
        #: structured event log, slow-query log.
        self.telemetry = telemetry or Telemetry()
        self._clock = 0.0
        self._num_requests = 0
        self._degradations = 0
        self._shard_cache: dict[tuple[str, int], list[SegmentArray]] = {}

    @property
    def events(self) -> list[dict]:
        """Degradation and eviction records, oldest first.

        Backed by the structured event log (each entry is a typed,
        timestamped :class:`~repro.obs.Event`); this view keeps the
        original ``{"type": ..., ...}`` dict shape.
        """
        return [{"type": e.kind, **e.fields}
                for e in self.telemetry.events
                if e.kind in ("degradation", "eviction")]

    # -- public API ---------------------------------------------------------------

    def submit(self, request: SearchRequest) -> SearchResponse:
        """Serve one request (a batch of one)."""
        return self.submit_batch([request])[0]

    def submit_batch(self, requests: list[SearchRequest]
                     ) -> list[SearchResponse]:
        """Serve a batch of requests arriving together.

        All requests share one modeled arrival instant (the current
        service clock); each queues on the lane of the engine serving
        it, so requests on different devices overlap while requests
        contending for one index serialize — that contention is exactly
        what ``queue_wait_s`` reports.
        """
        arrival = self._clock
        with self.telemetry.activate(), \
                self.telemetry.span("service.batch",
                                    batch_size=len(requests)) as span:
            responses = [self._serve(r, arrival) for r in requests]
            span.set_modeled(arrival,
                             self.pool.busiest_until() - arrival)
        self._clock = max(self._clock, self.pool.busiest_until())
        return responses

    def stats(self) -> dict:
        """Service-level counters for dashboards and tests.

        With telemetry enabled the request/degradation numbers are read
        from the metrics registry — the same series the Prometheus
        exposition and the experiment harness see; plain instance
        counters are the fallback when telemetry is off.
        """
        if self.telemetry.enabled:
            m = self.telemetry.metrics
            num_requests = int(
                m.counter("repro_requests_total").total())
            degradations = int(
                m.counter("repro_degradations_total").total())
        else:
            num_requests = self._num_requests
            degradations = self._degradations
        return {
            "num_requests": num_requests,
            "cache": self.cache.stats.to_dict(),
            "cached_engines": len(self.cache),
            "cache_resident_bytes": self.cache.resident_bytes,
            "num_devices": self.pool.num_devices,
            "clock_s": self._clock,
            "lane_busy_until_s": [lane.busy_until
                                  for lane in self.pool.lanes],
            "degradations": degradations,
            "slow_queries": len(self.telemetry.slow_log),
        }

    # -- request execution ----------------------------------------------------------

    def _serve(self, request: SearchRequest, arrival: float
               ) -> SearchResponse:
        self._num_requests += 1
        metrics = RequestMetrics()
        metrics.arrival_s = arrival
        with self.telemetry.span(
                "service.request", request_id=request.request_id,
                method=request.method) as span:
            method, params = self._resolve_method(request, metrics)
            try:
                runs = self._engines_for(request, method, params,
                                         metrics)
            except ConfigError:
                raise  # caller error: bad parameters are not degradation
            except Exception as exc:  # noqa: BLE001 - any build failure degrades
                if method == self.FALLBACK_METHOD:
                    raise  # the fallback itself failed; nothing left
                self._record_degradation(request, method, exc, metrics)
                method, params = self.FALLBACK_METHOD, {}
                runs = self._engines_for(request, method, params,
                                         metrics)
            response = self._execute(request, method, runs, arrival,
                                     metrics)
            span.set_attributes(engine=metrics.engine,
                                cache_hit=metrics.cache_hit,
                                degraded=metrics.degraded)
            span.set_modeled(arrival, metrics.queue_wait_s
                             + metrics.modeled_seconds)
        self._finish_request(request, response)
        return response

    def _finish_request(self, request: SearchRequest,
                        response: SearchResponse) -> None:
        """Record the per-request metrics, event, and slow-query entry."""
        m = response.metrics
        reg = self.telemetry.metrics
        reg.counter("repro_requests_total",
                    "requests served").inc(
            engine=m.engine,
            status="degraded" if m.degraded else "ok")
        reg.histogram("repro_request_latency_seconds",
                      "modeled response time per request").observe(
            m.modeled_seconds, engine=m.engine)
        reg.histogram("repro_request_wall_seconds",
                      "simulator wall time per request").observe(
            m.wall_seconds, engine=m.engine)
        reg.histogram("repro_queue_wait_seconds",
                      "modeled wait for a free device lane").observe(
            m.queue_wait_s, engine=m.engine)
        self.telemetry.events.emit(
            "request", request_id=request.request_id,
            engine=m.engine, modeled_seconds=m.modeled_seconds,
            wall_seconds=m.wall_seconds, queue_wait_s=m.queue_wait_s,
            cache_hit=m.cache_hit, degraded=m.degraded,
            results=len(response.outcome.results))
        slow = self.telemetry.slow_log.observe(
            request_id=request.request_id, engine=m.engine,
            modeled_seconds=m.modeled_seconds,
            queue_wait_s=m.queue_wait_s, cache_hit=m.cache_hit,
            degraded=m.degraded)
        if slow is not None:
            self.telemetry.events.emit("slow_query", **slow.to_dict())

    def _resolve_method(self, request: SearchRequest,
                        metrics: RequestMetrics) -> tuple[str, dict]:
        """Turn ``request.method`` into a concrete engine + parameters."""
        if request.method != "auto":
            if request.method not in ENGINE_REGISTRY:
                raise ValueError(
                    f"unknown method {request.method!r}; available: "
                    f"{sorted(ENGINE_REGISTRY)} or 'auto'")
            return request.method, dict(request.params)
        hints = {k: v for k, v in request.params.items()
                 if k in _PLANNER_HINTS}
        try:
            with self.telemetry.span("service.plan",
                                     sample=self.planner_sample) as sp:
                plans = plan_search(self.database, request.queries,
                                    request.d,
                                    sample=self.planner_sample,
                                    gpu_model=self.gpu_model,
                                    cpu_model=self.cpu_model, **hints)
                sp.set_attribute("winner", plans[0].engine)
        except Exception as exc:  # noqa: BLE001 - degrade, don't fail
            self._record_degradation(request, "auto", exc, metrics)
            return self.FALLBACK_METHOD, {}
        best = plans[0]
        params = dict(best.params)
        # Overlay the caller's hints the chosen engine understands
        # (e.g. a result_buffer_items override).
        cfg_type = ENGINE_REGISTRY[best.engine].config_type
        if cfg_type is not None:
            valid = cfg_type.valid_keys()
            params.update({k: v for k, v in request.params.items()
                           if k in valid})
        return best.engine, params

    def _engines_for(self, request: SearchRequest, method: str,
                     params: dict, metrics: RequestMetrics
                     ) -> list[CacheEntry]:
        """Cached engines serving this request — one per shard."""
        if request.shards == 1:
            shard_dbs = [(self.database, self.fingerprint)]
        else:
            shard_dbs = [
                (shard, (self.fingerprint, request.partition_strategy,
                         request.shards, i))
                for i, shard in enumerate(
                    self._shards(request.partition_strategy,
                                 request.shards))
            ]
        entries = []
        all_hit = True
        for shard, db_key in shard_dbs:
            entry, hit = self._engine_entry(shard, method, params,
                                            db_key, metrics)
            entries.append(entry)
            all_hit = all_hit and hit
        metrics.cache_hit = all_hit
        return entries

    def _shards(self, strategy: str, n: int) -> list[SegmentArray]:
        key = (strategy, n)
        if key not in self._shard_cache:
            self._shard_cache[key] = partition_database(
                self.database, n, strategy)
        return self._shard_cache[key]

    def _engine_entry(self, database: SegmentArray, method: str,
                      params: dict, db_key, metrics: RequestMetrics
                      ) -> tuple[CacheEntry, bool]:
        cls = ENGINE_REGISTRY[method]
        if cls.config_type is not None:
            cfg = cls.config_type.from_params(**params)
            key = (db_key, method, canonical_params(cfg.to_dict()))
        else:
            cfg = None
            key = (db_key, method, canonical_params(params))
        reg = self.telemetry.metrics
        entry = self.cache.get(key)
        if entry is not None:
            reg.counter("repro_cache_hits_total",
                        "engine-cache hits").inc(engine=method)
            return entry, True
        reg.counter("repro_cache_misses_total",
                    "engine-cache misses").inc(engine=method)

        build0 = time.perf_counter()
        with self.telemetry.span("engine.build", engine=method) as sp:
            is_gpu = issubclass(cls, GpuEngineBase)
            gpu = VirtualGPU(self.pool.spec) if is_gpu else None
            if cfg is not None:
                engine = cls.from_config(database, cfg, gpu=gpu)
            else:
                engine = cls.from_config(database, gpu=gpu, **params)
            if is_gpu and self.retry is not None:
                engine.retry = self.retry
            nbytes = (gpu.memory.allocated_bytes if gpu is not None
                      else 0)
            sp.set_attribute("nbytes", nbytes)
        build_s = time.perf_counter() - build0

        lane = (self.pool.home_for(nbytes).index if is_gpu
                else DevicePool.HOST_LANE)
        entry = CacheEntry(key=key, engine=engine, gpu=gpu, lane=lane,
                           nbytes=nbytes, build_wall_s=build_s)
        self.pool.place(lane, nbytes)
        self.cache.put(entry)
        metrics.engine_build_s += build_s
        reg.histogram("repro_engine_build_seconds",
                      "engine+index build wall seconds").observe(
            build_s, engine=method)
        self.telemetry.events.emit(
            "engine_build", engine=method, lane=lane, nbytes=nbytes,
            build_wall_s=build_s)
        return entry, False

    def _execute(self, request: SearchRequest, method: str,
                 entries: list[CacheEntry], arrival: float,
                 metrics: RequestMetrics) -> SearchResponse:
        runs: list[_ShardRun] = []
        with self.telemetry.span("service.execute",
                                 shards=len(entries)) as exec_span:
            for entry in entries:
                results, profile = entry.engine.search(
                    request.queries, request.d,
                    exclude_same_trajectory=request
                    .exclude_same_trajectory)
                if isinstance(profile, CpuSearchProfile):
                    modeled = profile.modeled_time(self.cpu_model)
                else:
                    modeled = profile.modeled_time(self.gpu_model)
                runs.append(_ShardRun(entry, results, profile, modeled))

        # Lane occupancy: each shard queues on its engine's home lane;
        # shards on distinct lanes overlap in modeled time.
        latest_start = arrival
        for i, run in enumerate(runs):
            lane = self.pool.lane(run.entry.lane)
            start = max(arrival, lane.busy_until)
            lane.busy_until = start + run.modeled.total
            latest_start = max(latest_start, start)
            metrics.lane_spans.append({
                "lane": run.entry.lane, "start_s": start,
                "dur_s": run.modeled.total, "shard": i,
            })
            # Each shard's search produced one engine.search child
            # span; now that the lane schedule priced it, pin it to
            # the modeled timeline.
            if i < len(exec_span.children):
                exec_span.children[i].set_modeled(
                    start, run.modeled.total)

        outcome = self._merge_outcome(method, runs)
        metrics.engine = method
        metrics.queue_wait_s = latest_start - arrival
        metrics.invocations = sum(
            len(r.profile.kernel_stats)
            for r in runs if isinstance(r.profile, SearchProfile))
        metrics.modeled_seconds = outcome.modeled_seconds
        metrics.wall_seconds = sum(r.profile.wall_seconds for r in runs)
        return SearchResponse(request_id=request.request_id,
                              outcome=outcome, metrics=metrics)

    def _merge_outcome(self, method: str,
                       runs: list[_ShardRun]) -> SearchOutcome:
        if len(runs) == 1:
            run = runs[0]
            return SearchOutcome(results=run.results,
                                 profile=run.profile,
                                 modeled=run.modeled)
        # Sharded execution: shards are disjoint and covering, so the
        # union of the per-shard result sets is the whole answer; the
        # modeled response time is the slowest shard (shards run
        # concurrently, as in the cluster model).
        results = ResultSet.from_parts(
            [r.results for r in runs]).deduplicated()
        slowest = max(runs, key=lambda r: r.modeled.total)
        profiles = [r.profile for r in runs]
        if all(isinstance(p, SearchProfile) for p in profiles):
            merged: SearchProfile | CpuSearchProfile = SearchProfile(
                engine=method,
                num_queries=profiles[0].num_queries,
                kernel_stats=[s for p in profiles for s in p.kernel_stats],
                h2d_bytes=sum(p.h2d_bytes for p in profiles),
                d2h_bytes=sum(p.d2h_bytes for p in profiles),
                num_transfers=sum(p.num_transfers for p in profiles),
                schedule_items=sum(p.schedule_items for p in profiles),
                redo_queries=sum(p.redo_queries for p in profiles),
                defaulted_queries=sum(p.defaulted_queries
                                      for p in profiles),
                raw_result_items=sum(p.raw_result_items
                                     for p in profiles),
                result_items=len(results),
                index_bytes=sum(p.index_bytes for p in profiles),
                wall_seconds=sum(p.wall_seconds for p in profiles),
            )
        else:
            merged = CpuSearchProfile(
                engine=method,
                num_queries=profiles[0].num_queries,
                node_visits=sum(getattr(p, "node_visits", 0)
                                for p in profiles),
                comparisons=sum(getattr(p, "comparisons", 0)
                                for p in profiles),
                result_items=len(results),
                index_bytes=sum(p.index_bytes for p in profiles),
                wall_seconds=sum(p.wall_seconds for p in profiles),
            )
        return SearchOutcome(results=results, profile=merged,
                             modeled=slowest.modeled)

    # -- bookkeeping -------------------------------------------------------------

    def _record_degradation(self, request: SearchRequest, method: str,
                            exc: Exception,
                            metrics: RequestMetrics) -> None:
        reason = f"{method}: {type(exc).__name__}: {exc}"
        metrics.degraded = True
        metrics.degradation_reason = reason
        self._degradations += 1
        self.telemetry.metrics.counter(
            "repro_degradations_total",
            "requests degraded to the fallback engine").inc(
            from_method=method)
        self.telemetry.events.emit(
            "degradation",
            request_id=request.request_id,
            method=method,
            fallback=self.FALLBACK_METHOD,
            reason=reason,
        )

    def _on_evict(self, entry: CacheEntry) -> None:
        self.pool.release(entry.lane, entry.nbytes)
        self.telemetry.metrics.counter(
            "repro_cache_evictions_total",
            "engine-cache evictions").inc(engine=entry.key[1])
        self.telemetry.events.emit(
            "eviction",
            method=entry.key[1],
            nbytes=entry.nbytes,
            lane=entry.lane,
        )
