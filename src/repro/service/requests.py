"""Typed request/response surface of the batched query service.

A client describes one batch of query segments as a
:class:`SearchRequest` and receives a :class:`SearchResponse` holding the
:class:`~repro.core.search.SearchOutcome` (results + profile + modeled
cost) and the service-side :class:`~repro.gpu.profiler.RequestMetrics`
(queue wait, cache hit/miss, degradation).  Both types round-trip through
JSON via ``to_dict``/``from_dict`` so batches can be submitted from files
(see the ``batch`` CLI subcommand) and responses archived next to the
experiment artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.search import SearchOutcome
from ..core.types import SegmentArray
from ..gpu.profiler import RequestMetrics

__all__ = ["RESPONSE_STATUSES", "SearchRequest", "SearchResponse"]


@dataclass
class SearchRequest:
    """One batch of query segments to search against the service's
    database.

    Parameters
    ----------
    queries:
        The query segments ``Q`` (searched as one batch — the paper's
        unit of GPU work).
    d:
        Distance threshold.
    method:
        A :func:`repro.engines.available` name, or ``"auto"`` (default)
        to let the
        service pick via the cost-based planner.
    params:
        Engine tuning knobs.  With an explicit ``method`` they are
        validated against that engine's typed config; with ``"auto"``
        they act as hints — keys the chosen engine does not understand
        are ignored.
    exclude_same_trajectory:
        Self-join mode: drop results pairing a query with its own
        trajectory.
    shards:
        Split the database into this many shards executed concurrently
        on the device pool (reuses the cluster partitioner); 1 = search
        the whole database on one device.
    partition_strategy:
        Shard assignment rule when ``shards > 1`` (see
        :mod:`repro.distributed.partition`).
    deadline_s:
        Wall-clock budget for serving this request; the service
        propagates it into engine retry loops and the failover ladder,
        and rejects with a typed ``deadline_exceeded`` response when it
        runs out.  ``None`` (default) = no per-request deadline.
    request_id:
        Client-chosen correlation id echoed in the response.
    """

    queries: SegmentArray
    d: float
    method: str = "auto"
    params: dict = field(default_factory=dict)
    exclude_same_trajectory: bool = False
    shards: int = 1
    partition_strategy: str = "round_robin"
    deadline_s: float | None = None
    request_id: str = ""

    def __post_init__(self) -> None:
        if len(self.queries) == 0:
            raise ValueError("request needs a non-empty query set")
        if not (self.d >= 0.0):
            raise ValueError(f"distance threshold must be >= 0, "
                             f"got {self.d!r}")
        if int(self.shards) < 1:
            raise ValueError("shards must be >= 1")
        if self.deadline_s is not None and not (self.deadline_s > 0):
            raise ValueError("deadline_s must be positive (or None)")
        self.shards = int(self.shards)

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "queries": self.queries.to_dict(),
            "d": float(self.d),
            "method": self.method,
            "params": dict(self.params),
            "exclude_same_trajectory": bool(self.exclude_same_trajectory),
            "shards": int(self.shards),
            "partition_strategy": self.partition_strategy,
            "deadline_s": self.deadline_s,
            "request_id": self.request_id,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchRequest":
        """Inverse of :meth:`to_dict` (missing optional keys take their
        defaults, so hand-written request files stay short)."""
        return cls(
            queries=SegmentArray.from_dict(payload["queries"]),
            d=float(payload["d"]),
            method=payload.get("method", "auto"),
            params=dict(payload.get("params", {})),
            exclude_same_trajectory=bool(
                payload.get("exclude_same_trajectory", False)),
            shards=int(payload.get("shards", 1)),
            partition_strategy=payload.get("partition_strategy",
                                           "round_robin"),
            deadline_s=payload.get("deadline_s"),
            request_id=payload.get("request_id", ""),
        )


#: response statuses: ``ok`` carries an outcome (possibly via a
#: degraded engine); ``partial`` carries an outcome covering only the
#: shards that survived (``missing_shards`` names the holes); the
#: others are typed rejections with no outcome.
RESPONSE_STATUSES = ("ok", "overloaded", "deadline_exceeded", "partial")


@dataclass
class SearchResponse:
    """What the service returns for one :class:`SearchRequest`.

    ``status == "ok"`` responses carry a full
    :class:`~repro.core.search.SearchOutcome` (check
    ``metrics.degraded`` for whether a fallback engine produced it).
    ``status == "partial"`` responses come from the sharded router when
    every replica of one or more shards is down: the outcome is exact
    over the surviving shards and ``missing_shards`` names the shard
    indices whose rows are absent from it.  Typed rejections —
    ``"overloaded"`` from queue-pressure load shedding,
    ``"deadline_exceeded"`` from an exhausted request budget — carry
    ``outcome=None`` plus a human-readable ``reason``, so a client can
    tell "no answer, retry later" from "empty answer".
    """

    request_id: str
    outcome: SearchOutcome | None
    metrics: RequestMetrics
    status: str = "ok"
    reason: str = ""
    #: shard indices missing from a ``partial`` outcome (empty otherwise).
    missing_shards: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.status not in RESPONSE_STATUSES:
            raise ValueError(f"unknown status {self.status!r}; expected "
                             f"one of {RESPONSE_STATUSES}")
        carries_outcome = self.status in ("ok", "partial")
        if (self.outcome is None) == carries_outcome:
            raise ValueError("ok/partial responses need an outcome; "
                             "rejected responses must not carry one")
        self.missing_shards = tuple(int(s) for s in self.missing_shards)
        if bool(self.missing_shards) != (self.status == "partial"):
            raise ValueError("missing_shards is set iff the status is "
                             "'partial'")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def partial(self) -> bool:
        """True when the outcome covers only the surviving shards."""
        return self.status == "partial"

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "request_id": self.request_id,
            "status": self.status,
            "reason": self.reason,
            "outcome": (self.outcome.to_dict()
                        if self.outcome is not None else None),
            "metrics": self.metrics.to_dict(),
            "missing_shards": list(self.missing_shards),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SearchResponse":
        """Inverse of :meth:`to_dict` (``status``/``reason`` default to
        an ok response so pre-resilience payloads still load)."""
        outcome = payload.get("outcome")
        return cls(
            request_id=payload["request_id"],
            outcome=(SearchOutcome.from_dict(outcome)
                     if outcome is not None else None),
            metrics=RequestMetrics.from_dict(payload["metrics"]),
            status=payload.get("status", "ok"),
            reason=payload.get("reason", ""),
            missing_shards=tuple(payload.get("missing_shards", ())),
        )
