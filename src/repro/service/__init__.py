"""Batched query service: index caching, adaptive engine selection, and
a typed request/response API.

The paper's engines answer one query set against one pre-built index.  A
*service* answers a stream of batches, and three serving concerns
dominate once the index exists:

* amortizing the offline index build across batches (the engine cache),
* choosing the right engine per workload (planner-driven ``"auto"``),
* and surviving bad configurations (degradation to ``cpu_scan``).

Entry point::

    from repro.service import QueryService, SearchRequest

    svc = QueryService(db, num_devices=2)
    resp = svc.submit(SearchRequest(queries=q, d=5.0, method="auto"))
    resp.outcome.results       # the ResultSet
    resp.metrics.cache_hit     # served from a cached index?
    resp.metrics.queue_wait_s  # modeled wait for a free device
"""

from .cache import (CacheEntry, CacheStats, EngineCache,
                    canonical_params, database_fingerprint)
from .requests import SearchRequest, SearchResponse
from .scheduler import DeviceLane, DevicePool, QueryService

__all__ = [
    "CacheEntry",
    "CacheStats",
    "DeviceLane",
    "DevicePool",
    "EngineCache",
    "QueryService",
    "SearchRequest",
    "SearchResponse",
    "canonical_params",
    "database_fingerprint",
]
