"""Batched query service: index caching, adaptive engine selection, and
a typed request/response API — hardened against device faults.

The paper's engines answer one query set against one pre-built index.  A
*service* answers a stream of batches, and the serving concerns dominate
once the index exists:

* amortizing the offline index build across batches (the engine cache),
* choosing the right engine per workload (planner-driven ``"auto"``),
* mutating the database without rebuilds: appends and deletes land in
  a versioned delta (:mod:`repro.ingest`), queries pin MVCC snapshots,
  and compaction folds the delta into a fresh base off the hot path,
* and surviving failures: a deterministic failover ladder (other GPU
  engines → ``cpu_rtree`` → ``cpu_scan``), per-engine circuit breakers,
  per-lane quarantine with probational re-admission, per-request
  deadlines, queue-pressure load shedding, and sampled cross-checking
  of failover results against ground truth (see
  :mod:`repro.service.resilience` and :mod:`repro.faults`).

Entry point::

    from repro.service import QueryService, SearchRequest

    svc = QueryService(db, num_devices=2)
    resp = svc.submit(SearchRequest(queries=q, d=5.0, method="auto"))
    resp.ok                    # False for typed rejections
    resp.outcome.results       # the ResultSet (ok responses)
    resp.metrics.cache_hit     # served from a cached index?
    resp.metrics.failovers     # ladder hops before an engine answered
"""

from ..ingest import (CompactionPolicy, CompactionResult, IngestError,
                      IngestReceipt, Snapshot, VersionedDatabase)
from ..standing import StandingPolicy, Subscription
from .cache import (CacheEntry, CacheStats, EngineCache,
                    canonical_params, database_fingerprint)
from .requests import RESPONSE_STATUSES, SearchRequest, SearchResponse
from .resilience import (CircuitBreaker, LaneHealth, NoUsableLaneError)
from .scheduler import DeviceLane, DevicePool, QueryService

__all__ = [
    "CacheEntry",
    "CacheStats",
    "CircuitBreaker",
    "CompactionPolicy",
    "CompactionResult",
    "DeviceLane",
    "DevicePool",
    "EngineCache",
    "IngestError",
    "IngestReceipt",
    "LaneHealth",
    "NoUsableLaneError",
    "QueryService",
    "RESPONSE_STATUSES",
    "SearchRequest",
    "SearchResponse",
    "Snapshot",
    "StandingPolicy",
    "Subscription",
    "VersionedDatabase",
    "canonical_params",
    "database_fingerprint",
]
