"""Resilience primitives for the serving layer: breakers and lane health.

Two small state machines keep a faulty pool from taking the service
down, both driven by the service's *modeled* clock so recovery behaviour
is deterministic and testable:

* :class:`CircuitBreaker` — per-engine.  Consecutive engine failures
  open the breaker; while open, requests skip the engine and go straight
  to the next failover rung instead of paying the failure again.  After
  a reset window (modeled seconds, with a skip-count fallback so a
  stalled clock cannot wedge the breaker open), one half-open probe is
  admitted: success closes the breaker, failure re-opens it.
* :class:`LaneHealth` — per device lane.  Consecutive failures
  quarantine the lane (its cached indexes are invalidated and rebuilt
  elsewhere); after the quarantine window the lane is *probationally*
  re-admitted — it takes traffic again, but one more failure
  re-quarantines it with a doubled window, while one success restores
  full health.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CircuitBreaker", "LaneHealth", "NoUsableLaneError",
           "BREAKER_STATES", "LANE_STATES"]

BREAKER_STATES = ("closed", "open", "half_open")
LANE_STATES = ("healthy", "probation", "quarantined")


class NoUsableLaneError(RuntimeError):
    """Every GPU lane in the pool is quarantined; nothing to build on."""


@dataclass
class CircuitBreaker:
    """Consecutive-failure circuit breaker for one engine.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that open a closed breaker.
    reset_after_s:
        Modeled seconds an open breaker waits before admitting a
        half-open probe.
    probe_after_skips:
        Fallback: admit a probe after this many skipped requests even
        if the modeled clock has not advanced ``reset_after_s`` (an
        all-failing service may never advance it).
    """

    failure_threshold: int = 3
    reset_after_s: float = 30.0
    probe_after_skips: int = 8

    state: str = "closed"
    consecutive_failures: int = 0
    opened_at: float = 0.0
    skips: int = 0
    #: closed -> open transitions, for reporting.
    trips: int = 0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_after_s <= 0:
            raise ValueError("reset_after_s must be positive")
        if self.probe_after_skips < 1:
            raise ValueError("probe_after_skips must be >= 1")

    def allow(self, now: float) -> bool:
        """May a request use this engine at modeled instant ``now``?"""
        if self.state != "open":
            return True
        if (now - self.opened_at >= self.reset_after_s
                or self.skips >= self.probe_after_skips):
            self.state = "half_open"
            return True
        self.skips += 1
        return False

    def record_success(self) -> bool:
        """Engine served a request; returns True when this closed a
        half-open breaker."""
        closed_probe = self.state == "half_open"
        self.state = "closed"
        self.consecutive_failures = 0
        self.skips = 0
        return closed_probe

    def record_failure(self, now: float) -> bool:
        """Engine failed a request; returns True when this opened the
        breaker (trip or failed half-open probe)."""
        self.consecutive_failures += 1
        if (self.state == "half_open"
                or self.consecutive_failures >= self.failure_threshold):
            newly_open = self.state != "open"
            self.state = "open"
            self.opened_at = now
            self.skips = 0
            if newly_open:
                self.trips += 1
            return newly_open
        return False

    @property
    def state_code(self) -> int:
        """Gauge encoding: 0 closed, 1 half-open, 2 open."""
        return BREAKER_STATES.index(self.state) if self.state != "half_open" else 1

    def to_dict(self) -> dict:
        """JSON-friendly snapshot for stats and the chaos report."""
        return {"state": self.state, "trips": self.trips,
                "consecutive_failures": self.consecutive_failures}


@dataclass
class LaneHealth:
    """Quarantine/probation state machine of one device lane."""

    state: str = "healthy"
    consecutive_failures: int = 0
    quarantined_until: float = 0.0
    #: times this lane has been quarantined; doubles the next window.
    quarantine_count: int = 0

    @property
    def usable(self) -> bool:
        return self.state != "quarantined"

    def record_failure(self, now: float, *, threshold: int,
                       quarantine_s: float) -> bool:
        """One failed operation on the lane; returns True when the lane
        was (re-)quarantined.  A probational lane is re-quarantined by
        its first failure, with the window doubled."""
        self.consecutive_failures += 1
        if (self.state == "probation"
                or self.consecutive_failures >= threshold):
            window = quarantine_s * 2.0 ** self.quarantine_count
            self.quarantine_count += 1
            self.state = "quarantined"
            self.quarantined_until = now + window
            self.consecutive_failures = 0
            return True
        return False

    def record_success(self) -> bool:
        """One successful request on the lane; returns True when this
        re-admitted a probational lane to full health."""
        readmitted = self.state == "probation"
        self.state = "healthy"
        self.consecutive_failures = 0
        if readmitted:
            self.quarantine_count = 0
        return readmitted

    def refresh(self, now: float) -> bool:
        """Expire the quarantine window; returns True when the lane
        just entered probation."""
        if self.state == "quarantined" and now >= self.quarantined_until:
            self.state = "probation"
            return True
        return False

    @property
    def state_code(self) -> int:
        """Gauge encoding: 0 healthy, 1 probation, 2 quarantined."""
        return LANE_STATES.index(self.state)

    def to_dict(self) -> dict:
        """JSON-friendly snapshot for stats and the chaos report."""
        return {"state": self.state,
                "consecutive_failures": self.consecutive_failures,
                "quarantine_count": self.quarantine_count,
                "quarantined_until": self.quarantined_until}
