"""Keyed engine/index cache with LRU eviction against device memory.

Building an index is the paper's offline phase (§V-B): expensive, done
once, excluded from response time.  A service that rebuilt the index for
every batch would throw that away, so the service keeps built engines in
a cache keyed by *database fingerprint × method × canonical parameters*
— the exact inputs that determine an index's contents.

Eviction is LRU against a byte budget sized to the device pool's
aggregate global memory: each cached GPU engine holds real allocations on
its private :class:`~repro.gpu.device.VirtualGPU`, so the budget models
"how many indexes fit resident on the cards".  CPU engines live in host
memory, which is not the scarce resource here; they are cached with a
zero device footprint.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..core.types import SegmentArray
from ..engines.base import SearchEngine
from ..gpu.device import VirtualGPU

__all__ = ["CacheEntry", "CacheStats", "EngineCache",
           "canonical_params", "database_fingerprint"]


def database_fingerprint(database: SegmentArray) -> str:
    """Content hash of a database: equal arrays ⇒ equal fingerprint.

    ``SegmentArray`` is unhashable by design (it holds mutable-looking
    NumPy arrays); the service needs a stable dict key that survives
    round-trips through files, so it hashes the raw column bytes.
    """
    h = hashlib.sha1()
    for name in (*SegmentArray._FIELDS, "traj_ids", "seg_ids"):
        h.update(np.ascontiguousarray(getattr(database, name)).tobytes())
    return h.hexdigest()


def _hashable(value: Any) -> Any:
    if isinstance(value, np.generic):
        # np.int64(40) etc. hash/compare differently from the Python
        # scalar across dict round-trips; canonicalize to the builtin.
        value = value.item()
    if isinstance(value, dict):
        return tuple(sorted((str(k), _hashable(v))
                            for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, np.ndarray):
        return (value.shape, tuple(value.ravel().tolist()))
    return value


def canonical_params(params: dict) -> tuple:
    """Deterministic, hashable view of an engine-parameter dict.

    Logically-equal dicts must canonicalize identically or the engine
    cache silently rebuilds: nested dicts are flattened to sorted item
    tuples, NumPy scalars collapse to their Python equivalents, and
    lists/tuples/arrays become plain tuples.
    """
    return tuple(sorted((str(k), _hashable(v))
                        for k, v in params.items()))


@dataclass
class CacheEntry:
    """One cached engine: the built index plus placement bookkeeping."""

    key: tuple
    engine: SearchEngine
    #: the engine's private device (None for CPU engines).
    gpu: VirtualGPU | None
    #: pool lane the engine is homed on (-1 = host lane).
    lane: int
    #: device bytes the entry holds resident (0 for CPU engines).
    nbytes: int
    #: wall seconds the one-time build took (reported, not charged to
    #: response time — the offline phase of §V-B).
    build_wall_s: float


@dataclass
class CacheStats:
    """Hit/miss/eviction counters, exposed through service stats.

    ``failed_builds`` counts misses whose engine build then failed —
    those never become cache entries, so a failed build is visible in
    the stats without ever being mistaken for a usable cached engine.
    ``invalidations`` counts entries dropped for health reasons (their
    device lane was quarantined), as opposed to LRU ``evictions``.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    failed_builds: int = 0
    invalidations: int = 0

    @property
    def hit_ratio(self) -> float:
        """Hits over lookups, 0.0 before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "failed_builds": self.failed_builds,
                "invalidations": self.invalidations,
                "hit_ratio": self.hit_ratio}


class EngineCache:
    """LRU cache of built engines bounded by a device-byte budget."""

    def __init__(self, budget_bytes: int,
                 on_evict: Callable[[CacheEntry], None] | None = None
                 ) -> None:
        if budget_bytes <= 0:
            raise ValueError("cache budget must be positive")
        self.budget_bytes = int(budget_bytes)
        self._entries: "OrderedDict[tuple, CacheEntry]" = OrderedDict()
        self._on_evict = on_evict
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    @property
    def resident_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    def get(self, key: tuple) -> CacheEntry | None:
        """Look up an entry, counting the hit/miss and refreshing LRU
        recency on hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def put(self, entry: CacheEntry) -> None:
        """Insert an entry, evicting least-recently-used entries until
        the byte budget holds.  An entry larger than the whole budget is
        rejected (it could never be cached honestly)."""
        if entry.nbytes > self.budget_bytes:
            raise ValueError(
                f"engine needs {entry.nbytes} bytes, cache budget is "
                f"{self.budget_bytes}")
        while self._entries \
                and self.resident_bytes + entry.nbytes > self.budget_bytes:
            _, victim = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self._on_evict is not None:
                self._on_evict(victim)
        self._entries[entry.key] = entry

    def record_failed_build(self) -> None:
        """Count a miss whose engine build failed (no entry created)."""
        self.stats.failed_builds += 1

    def invalidate_lane(self, lane: int) -> int:
        """Drop every entry homed on ``lane`` (the lane was quarantined;
        its device-resident indexes are gone).  ``on_evict`` runs for
        each dropped entry so pool residency stays balanced.  Returns
        the number of entries dropped."""
        return self.invalidate_where(lambda e: e.lane == lane)

    def invalidate_where(self, predicate: Callable[[CacheEntry], bool]
                         ) -> int:
        """Drop every entry matching ``predicate`` (quarantined lane,
        compacted-away base, ...), counting them as invalidations, not
        LRU evictions.  ``on_evict`` runs for each dropped entry so
        pool residency stays balanced.  Returns the number dropped."""
        victims = [key for key, e in self._entries.items()
                   if predicate(e)]
        for key in victims:
            entry = self._entries.pop(key)
            self.stats.invalidations += 1
            if self._on_evict is not None:
                self._on_evict(entry)
        return len(victims)

    def entries(self) -> list[CacheEntry]:
        """Snapshot in LRU order (oldest first), for reporting."""
        return list(self._entries.values())
