"""Delta-overlay search: base-engine results ∪ brute-force delta scan.

A query against a snapshot runs in three refinement-time steps, none of
which touch the base index:

1. the base engine answers over the (immutable, indexed) base;
2. tombstoned trajectories are filtered out of those results;
3. the live delta is scanned brute-force (a
   :class:`~repro.engines.cpu_scan.CpuScanEngine` over the delta rows —
   the delta is small by policy, so the scan is bounded) and the two
   result streams are unioned.

The scan cost is real and charged: the delta profile is priced with the
CPU cost model and added to the base outcome's modeled breakdown, so the
latency gap between a dirty snapshot and a freshly-compacted one is
visible in every response — that gap is exactly what the compaction
policy bounds (see ``benchmarks/test_ingest_latency.py``).
"""

from __future__ import annotations

from ..core.result import ResultSet
from ..core.search import SearchOutcome
from ..core.types import SegmentArray
from ..engines.cpu_scan import CpuScanEngine
from ..gpu.costmodel import CpuCostModel
from ..gpu.profiler import CpuSearchProfile
from .versioned import Snapshot

__all__ = ["delta_engine_for", "overlay_search"]


def delta_engine_for(snapshot: Snapshot) -> CpuScanEngine | None:
    """The snapshot's brute-force delta engine (None when the live
    delta is empty).  Cached on the snapshot: one sort pays for every
    query pinned to it."""
    live = snapshot.live_delta()
    if len(live) == 0:
        return None
    engine = getattr(snapshot, "_overlay_engine", None)
    if engine is None:
        engine = CpuScanEngine(live)
        snapshot._overlay_engine = engine
    return engine


def overlay_search(outcome: SearchOutcome, snapshot: Snapshot,
                   queries: SegmentArray, d: float, *,
                   exclude_same_trajectory: bool = False,
                   cpu_model: CpuCostModel | None = None
                   ) -> tuple[SearchOutcome, CpuSearchProfile | None]:
    """Lift a base-only outcome to the full snapshot.

    Returns the corrected outcome plus the delta-scan profile (None
    when the snapshot was clean and the outcome passed through
    untouched).  The outcome's modeled breakdown gains the scan's
    host-side cost; its engine profile stays the base engine's — the
    scan is reported separately so dashboards can tell index work from
    overlay work.
    """
    if snapshot.clean:
        return outcome, None
    cpu_model = cpu_model or CpuCostModel()
    results = snapshot.filter_tombstoned(outcome.results)
    modeled = outcome.modeled
    delta_profile: CpuSearchProfile | None = None
    engine = delta_engine_for(snapshot)
    if engine is not None:
        delta_results, delta_profile = engine.search(
            queries, d,
            exclude_same_trajectory=exclude_same_trajectory)
        # Deletes issued after the append can hide delta rows too —
        # live_delta() already dropped them, so no second filter here.
        results = ResultSet.from_parts(
            [results, delta_results]).deduplicated()
        modeled = modeled + delta_profile.modeled_time(cpu_model)
    return (SearchOutcome(results=results, profile=outcome.profile,
                          modeled=modeled),
            delta_profile)
