"""The versioned database: base + delta + tombstones under an epoch.

:class:`VersionedDatabase` is the single writer-side object; everything
readers touch is an immutable :class:`Snapshot`.  The contract that the
differential tests pin down: for any sequence of appends, deletes, and
compactions, a search over a snapshot must equal a search over a
from-scratch database built from :meth:`Snapshot.logical` — compaction
and the delta overlay are performance mechanisms, never semantics.

Epoch bookkeeping
-----------------
* ``epoch`` increments on *every* mutation (append, delete, compact) —
  it names a logical database state, and MVCC pinning is "remember the
  snapshot, which remembers its epoch".
* ``delta_epoch`` increments on append/delete and resets to 0 at
  compaction — together with the base fingerprint it names the exact
  physical layout ``(base_fingerprint, delta_epoch)``.
* ``base_version`` increments only at compaction: cheap integer proxy
  for "the expensive indexes are stale".
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.result import ResultSet
from ..core.types import SegmentArray, Trajectory, concatenate

__all__ = ["CompactionPolicy", "CompactionResult", "IngestError",
           "IngestReceipt", "Snapshot", "VersionedDatabase",
           "as_segments"]


def as_segments(segments: SegmentArray | Trajectory |
                list[Trajectory]) -> SegmentArray:
    """Normalize the polymorphic append input to one SegmentArray.

    Shared by :meth:`VersionedDatabase.append` and the durability
    layer, which must WAL exactly what the append will see.
    """
    if isinstance(segments, Trajectory):
        segments = [segments]
    if isinstance(segments, list):
        segments = SegmentArray.from_trajectories(segments)
    if not isinstance(segments, SegmentArray):
        raise TypeError("append expects a SegmentArray, a "
                        "Trajectory, or a list of Trajectory")
    return segments


class IngestError(ValueError):
    """A mutation the versioned database cannot honor."""


@dataclass(frozen=True)
class CompactionPolicy:
    """When to fold the delta into a fresh base.

    Compaction triggers when *either* bound is crossed:

    * ``max_delta_segments`` — absolute cap on delta rows (the delta is
      scanned brute-force per query, so its cost is linear in this);
    * ``max_delta_ratio`` — delta rows over base rows: keeps the scan a
      bounded *fraction* of query work as the database grows;
    * any tombstones at all count toward pressure via
      ``max_tombstone_ratio`` (tombstoned base rows still occupy the
      index and are filtered on every query).
    """

    max_delta_segments: int = 4096
    max_delta_ratio: float = 0.25
    max_tombstone_ratio: float = 0.5

    def __post_init__(self) -> None:
        if self.max_delta_segments < 1:
            raise ValueError("max_delta_segments must be >= 1")
        if self.max_delta_ratio <= 0:
            raise ValueError("max_delta_ratio must be positive")
        if self.max_tombstone_ratio <= 0:
            raise ValueError("max_tombstone_ratio must be positive")

    def should_compact(self, *, delta_rows: int, base_rows: int,
                       tombstoned_rows: int) -> bool:
        if delta_rows >= self.max_delta_segments:
            return True
        if base_rows and delta_rows / base_rows > self.max_delta_ratio:
            return True
        return bool(base_rows) and (tombstoned_rows / base_rows
                                    > self.max_tombstone_ratio)

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"max_delta_segments": self.max_delta_segments,
                "max_delta_ratio": self.max_delta_ratio,
                "max_tombstone_ratio": self.max_tombstone_ratio}


@dataclass(frozen=True)
class IngestReceipt:
    """What one append did (returned to the client)."""

    epoch: int
    delta_epoch: int
    num_segments: int
    trajectory_ids: tuple[int, ...]
    #: database-wide segment ids assigned to the appended rows.
    seg_ids: tuple[int, ...]
    #: True when this append pushed the delta over the policy bounds
    #: (the owner decides when to actually run the compaction).
    compaction_due: bool
    #: True when an idempotency key matched an already-applied append:
    #: the receipt replays the original application, nothing mutated.
    deduplicated: bool = False

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"epoch": self.epoch, "delta_epoch": self.delta_epoch,
                "num_segments": self.num_segments,
                "trajectory_ids": list(self.trajectory_ids),
                "seg_ids": list(self.seg_ids),
                "compaction_due": self.compaction_due,
                "deduplicated": self.deduplicated}


@dataclass(frozen=True)
class CompactionResult:
    """What one compaction did."""

    epoch: int
    base_version: int
    #: delta rows merged into the new base.
    merged_segments: int
    #: tombstoned rows dropped (from base and delta combined).
    dropped_segments: int
    new_base_rows: int
    wall_seconds: float

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"epoch": self.epoch, "base_version": self.base_version,
                "merged_segments": self.merged_segments,
                "dropped_segments": self.dropped_segments,
                "new_base_rows": self.new_base_rows,
                "wall_seconds": self.wall_seconds}


class Snapshot:
    """One immutable, queryable view of the versioned database.

    A snapshot pins the exact ``(base, delta, tombstones)`` triple that
    existed when it was taken; the writer mutating the
    :class:`VersionedDatabase` afterwards never changes it (MVCC).  All
    derived views (:meth:`logical`, the live delta, the seg→trajectory
    map) are computed lazily and cached on the snapshot itself, so
    repeated queries against one snapshot pay the materialization once.
    """

    def __init__(self, *, base: SegmentArray, delta: SegmentArray,
                 tombstones: frozenset[int], epoch: int,
                 delta_epoch: int, base_version: int) -> None:
        self.base = base
        self.delta = delta
        self.tombstones = tombstones
        self.epoch = epoch
        self.delta_epoch = delta_epoch
        self.base_version = base_version
        self._logical: SegmentArray | None = None
        self._live_delta: SegmentArray | None = None
        self._seg_sorted: np.ndarray | None = None
        self._traj_by_seg: np.ndarray | None = None

    def __repr__(self) -> str:
        return (f"Snapshot(epoch={self.epoch}, base={len(self.base)}, "
                f"delta={len(self.delta)}, "
                f"tombstones={len(self.tombstones)})")

    @property
    def clean(self) -> bool:
        """True when the snapshot is pure base: no delta, no tombstones
        — the overlay machinery can be skipped entirely."""
        return len(self.delta) == 0 and not self.tombstones

    @property
    def num_logical_segments(self) -> int:
        return len(self.base) + len(self.delta) \
            - self.num_tombstoned_rows

    @property
    def num_tombstoned_rows(self) -> int:
        if not self.tombstones:
            return 0
        dead = self._tombstone_array()
        return int(np.isin(self.base.traj_ids, dead).sum()
                   + np.isin(self.delta.traj_ids, dead).sum())

    def _tombstone_array(self) -> np.ndarray:
        return np.fromiter(sorted(self.tombstones), dtype=np.int64,
                           count=len(self.tombstones))

    # -- derived views (lazy, cached on the snapshot) ----------------------------

    def live_delta(self) -> SegmentArray:
        """Delta rows not hidden by a tombstone, in append order."""
        if self._live_delta is None:
            if not self.tombstones or len(self.delta) == 0:
                self._live_delta = self.delta
            else:
                keep = ~np.isin(self.delta.traj_ids,
                                self._tombstone_array())
                self._live_delta = self.delta.take(np.flatnonzero(keep))
        return self._live_delta

    def logical(self) -> SegmentArray:
        """The logical database this snapshot answers queries over:
        live base rows (base order) followed by live delta rows (append
        order), original seg_ids preserved.

        This is exactly what a from-scratch rebuild would index — the
        differential harness asserts query equality against it.
        """
        if self._logical is None:
            base = self.base
            if self.tombstones:
                keep = ~np.isin(base.traj_ids, self._tombstone_array())
                base = base.take(np.flatnonzero(keep))
            live = self.live_delta()
            self._logical = (base if len(live) == 0
                             else concatenate([base, live]))
        return self._logical

    def seg_ids_of_trajectory(self, traj_id: int) -> np.ndarray:
        """All physical seg_ids carried by one trajectory id, across
        base and delta, tombstoned or not.

        The standing-query layer calls this on a *post-delete* snapshot
        to learn which entry ids a tombstone just hid — the rows are
        physically still present, which is exactly why the lookup
        works.
        """
        traj_id = int(traj_id)
        return np.concatenate([
            self.base.seg_ids[self.base.traj_ids == traj_id],
            self.delta.seg_ids[self.delta.traj_ids == traj_id]])

    # -- tombstone filtering at refinement ---------------------------------------

    def _seg_to_traj(self) -> tuple[np.ndarray, np.ndarray]:
        """``(sorted seg_ids, traj_id per sorted row)`` over base+delta."""
        if self._seg_sorted is None:
            seg = np.concatenate([self.base.seg_ids,
                                  self.delta.seg_ids])
            traj = np.concatenate([self.base.traj_ids,
                                   self.delta.traj_ids])
            order = np.argsort(seg, kind="stable")
            self._seg_sorted = seg[order]
            self._traj_by_seg = traj[order]
        return self._seg_sorted, self._traj_by_seg

    def filter_tombstoned(self, results: ResultSet) -> ResultSet:
        """Drop result items whose *entry* belongs to a tombstoned
        trajectory.

        The base index still contains tombstoned segments (deletes never
        touch it); this is the refinement-time filter that hides them.
        """
        if not self.tombstones or len(results) == 0:
            return results
        seg_sorted, traj_by_seg = self._seg_to_traj()
        pos = np.searchsorted(seg_sorted, results.e_ids)
        pos = np.clip(pos, 0, len(seg_sorted) - 1)
        traj = traj_by_seg[pos]
        # Unknown e_ids (not in this snapshot) can't be tombstoned.
        known = seg_sorted[pos] == results.e_ids
        dead = known & np.isin(traj, self._tombstone_array())
        if not dead.any():
            return results
        keep = np.flatnonzero(~dead)
        return ResultSet(results.q_ids[keep], results.e_ids[keep],
                         results.t_lo[keep], results.t_hi[keep])


class VersionedDatabase:
    """Writer-side state: the mutable log over an immutable base.

    Parameters
    ----------
    base:
        Initial (non-empty) segment database; becomes base version 0.
    policy:
        Compaction trigger bounds (default :class:`CompactionPolicy`).

    Mutations (:meth:`append`, :meth:`delete_trajectory`,
    :meth:`compact`) bump the epoch and invalidate the cached snapshot;
    :meth:`snapshot` is cheap when nothing changed.
    """

    def __init__(self, base: SegmentArray, *,
                 policy: CompactionPolicy | None = None) -> None:
        if len(base) == 0:
            raise ValueError("versioned database needs a non-empty base")
        self.policy = policy or CompactionPolicy()
        self._base = base
        self._delta_parts: list[SegmentArray] = []
        self._delta_rows = 0
        self._tombstones: set[int] = set()
        self._epoch = 0
        self._delta_epoch = 0
        self._base_version = 0
        self._next_seg_id = int(base.seg_ids.max()) + 1
        self._snapshot: Snapshot | None = None
        #: idempotency dedup table: client key -> JSON summary of the
        #: mutation it already named (checkpointed and WAL-carried, so
        #: retried client mutations stay exactly-once across a crash).
        self._applied_keys: dict[str, dict] = {}
        #: lifetime counters (exposed through service stats).
        self.total_appends = 0
        self.total_appended_segments = 0
        self.total_deletes = 0
        self.total_compactions = 0

    @classmethod
    def restore(cls, *, base: SegmentArray, delta: SegmentArray,
                tombstones, epoch: int, delta_epoch: int,
                base_version: int, next_seg_id: int,
                policy: CompactionPolicy | None = None,
                counters: dict | None = None,
                applied_keys: dict | None = None
                ) -> "VersionedDatabase":
        """Reconstruct a database at an exact physical state.

        Used by crash recovery (:mod:`repro.durability`): the arguments
        come from a checkpoint, and the WAL tail is replayed on top
        with the ordinary mutation methods — ``next_seg_id`` makes the
        replayed appends assign the identical seg_ids they did before
        the crash.
        """
        db = cls(base, policy=policy)
        if len(delta):
            db._delta_parts = [delta]
            db._delta_rows = len(delta)
        db._tombstones = set(int(t) for t in tombstones)
        db._epoch = int(epoch)
        db._delta_epoch = int(delta_epoch)
        db._base_version = int(base_version)
        db._next_seg_id = int(next_seg_id)
        for name in ("total_appends", "total_appended_segments",
                     "total_deletes", "total_compactions"):
            setattr(db, name, int((counters or {}).get(name, 0)))
        db._applied_keys = {str(k): dict(v) for k, v
                            in (applied_keys or {}).items()}
        return db

    # -- introspection -----------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def delta_epoch(self) -> int:
        return self._delta_epoch

    @property
    def base_version(self) -> int:
        return self._base_version

    @property
    def base(self) -> SegmentArray:
        return self._base

    @property
    def delta_rows(self) -> int:
        return self._delta_rows

    @property
    def num_tombstones(self) -> int:
        return len(self._tombstones)

    @property
    def next_seg_id(self) -> int:
        """The seg_id the next appended row will receive (persisted by
        checkpoints so WAL replay re-stamps identically)."""
        return self._next_seg_id

    def applied_key(self, key: str) -> dict | None:
        """The JSON summary of the mutation ``key`` already named, or
        None when the key is fresh.  Callers check this *before*
        WAL-logging a keyed mutation — a duplicate client retry must
        neither re-log nor re-apply."""
        entry = self._applied_keys.get(str(key))
        return dict(entry) if entry is not None else None

    @property
    def applied_keys(self) -> dict[str, dict]:
        """The idempotency dedup table (checkpointed verbatim)."""
        return {k: dict(v) for k, v in self._applied_keys.items()}

    def should_compact(self) -> bool:
        """Has the delta (or tombstone load) crossed the policy bounds?"""
        return self.policy.should_compact(
            delta_rows=self._delta_rows,
            base_rows=len(self._base),
            tombstoned_rows=self.snapshot().num_tombstoned_rows)

    def stats(self) -> dict:
        """JSON-friendly counters for dashboards and reports."""
        return {
            "epoch": self._epoch,
            "delta_epoch": self._delta_epoch,
            "base_version": self._base_version,
            "base_rows": len(self._base),
            "delta_rows": self._delta_rows,
            "tombstones": len(self._tombstones),
            "appends": self.total_appends,
            "appended_segments": self.total_appended_segments,
            "deletes": self.total_deletes,
            "compactions": self.total_compactions,
            "idempotency_keys": len(self._applied_keys),
        }

    # -- reads -------------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """The current immutable view (cached until the next mutation)."""
        if self._snapshot is None:
            delta = (concatenate(self._delta_parts)
                     if self._delta_parts else SegmentArray.empty())
            self._snapshot = Snapshot(
                base=self._base, delta=delta,
                tombstones=frozenset(self._tombstones),
                epoch=self._epoch, delta_epoch=self._delta_epoch,
                base_version=self._base_version)
        return self._snapshot

    # -- mutation prechecks ------------------------------------------------------
    # The durability layer WALs a mutation *before* applying it, so it
    # must be able to reject an invalid mutation without logging it
    # (a logged-but-unappliable record would poison every replay).

    def check_append(self, segments: SegmentArray, *,
                     keep_seg_ids: bool = False) -> None:
        """Raise :class:`IngestError` iff :meth:`append` would."""
        if len(segments) == 0:
            raise IngestError("nothing to append: the segment set is "
                              "empty (single-point trajectories carry "
                              "no segments)")
        dead = self._tombstones.intersection(
            np.unique(segments.traj_ids).tolist())
        if dead:
            raise IngestError(
                f"trajectory ids {sorted(dead)} are tombstoned; "
                f"compact before re-using a deleted id")
        if keep_seg_ids:
            ids = segments.seg_ids
            if len(np.unique(ids)) != len(ids):
                raise IngestError("keep_seg_ids append carries "
                                  "duplicate seg_ids")
            if int(ids.min()) < self._next_seg_id:
                raise IngestError(
                    f"keep_seg_ids append would collide: seg_id "
                    f"{int(ids.min())} < next_seg_id "
                    f"{self._next_seg_id}")

    def check_delete(self, traj_id: int) -> bool:
        """Raise iff :meth:`delete_trajectory` would; returns whether
        the delete will actually mutate (False = already tombstoned,
        a no-op that must not be WAL-logged)."""
        traj_id = int(traj_id)
        if traj_id in self._tombstones:
            return False
        hidden = int((self._base.traj_ids == traj_id).sum())
        for part in self._delta_parts:
            hidden += int((part.traj_ids == traj_id).sum())
        if hidden == 0:
            raise IngestError(f"trajectory {traj_id} is not in the "
                              f"database")
        if self.snapshot().num_logical_segments - hidden <= 0:
            raise IngestError(
                "refusing to delete the last live trajectory: the "
                "database must stay non-empty")
        return True

    # -- mutations ---------------------------------------------------------------

    def append(self, segments: SegmentArray | Trajectory |
               list[Trajectory], *,
               keep_seg_ids: bool = False,
               idempotency_key: str | None = None) -> IngestReceipt:
        """Append new segments to the delta log.

        Accepts a :class:`Trajectory`, a list of them, or a raw
        :class:`SegmentArray`.  Fresh database-wide ``seg_ids`` are
        assigned (the caller's ids, if any, are ignored — entry ids are
        owned by the database).  With ``keep_seg_ids=True`` the caller's
        ids are trusted instead: the sharded router stamps *globally*
        unique ids before routing rows to the owning shard, so every
        shard-local database stays byte-compatible with the
        whole-database referee.  Kept ids must be fresh (>= the next
        unassigned id) and duplicate-free.  Appending to a tombstoned
        trajectory id is rejected: the tombstone hides *all* segments of
        that id, so the append would be silently invisible; re-use the
        id after a compaction has physically dropped the old rows.

        ``idempotency_key`` registers the append in the dedup table; a
        key that is already registered raises — the owner must consult
        :meth:`applied_key` first and replay the stored receipt instead
        of re-applying (exactly-once under client retries).
        """
        segments = as_segments(segments)
        if idempotency_key is not None \
                and str(idempotency_key) in self._applied_keys:
            raise IngestError(
                f"idempotency key {idempotency_key!r} was already "
                f"applied; look it up with applied_key() instead of "
                f"re-appending")
        self.check_append(segments, keep_seg_ids=keep_seg_ids)
        n = len(segments)
        if keep_seg_ids:
            seg_ids = segments.seg_ids.astype(np.int64, copy=False)
        else:
            seg_ids = np.arange(self._next_seg_id,
                                self._next_seg_id + n, dtype=np.int64)
        stamped = SegmentArray(
            segments.xs, segments.ys, segments.zs, segments.ts,
            segments.xe, segments.ye, segments.ze, segments.te,
            segments.traj_ids, seg_ids)
        self._next_seg_id = max(self._next_seg_id,
                                int(seg_ids.max()) + 1)
        self._delta_parts.append(stamped)
        self._delta_rows += n
        self._bump(delta=True)
        self.total_appends += 1
        self.total_appended_segments += n
        receipt = IngestReceipt(
            epoch=self._epoch, delta_epoch=self._delta_epoch,
            num_segments=n,
            trajectory_ids=tuple(int(t) for t in
                                 np.unique(stamped.traj_ids)),
            seg_ids=tuple(int(s) for s in seg_ids),
            compaction_due=self.should_compact())
        if idempotency_key is not None:
            self._applied_keys[str(idempotency_key)] = {
                "op": "append", **receipt.to_dict()}
        return receipt

    def delete_trajectory(self, traj_id: int, *,
                          idempotency_key: str | None = None) -> int:
        """Tombstone one trajectory; returns the number of segments the
        tombstone hides (base + delta).  Deleting an unknown id raises
        (a typo should not silently 'succeed').  ``idempotency_key``
        registers the delete in the dedup table (see :meth:`append`)."""
        traj_id = int(traj_id)
        if idempotency_key is not None \
                and str(idempotency_key) in self._applied_keys:
            raise IngestError(
                f"idempotency key {idempotency_key!r} was already "
                f"applied; look it up with applied_key() instead of "
                f"re-deleting")
        if not self.check_delete(traj_id):
            return 0
        hidden = int((self._base.traj_ids == traj_id).sum())
        for part in self._delta_parts:
            hidden += int((part.traj_ids == traj_id).sum())
        self._tombstones.add(traj_id)
        self._bump(delta=True)
        self.total_deletes += 1
        if idempotency_key is not None:
            self._applied_keys[str(idempotency_key)] = {
                "op": "delete", "epoch": self._epoch,
                "traj_id": traj_id, "hidden": hidden}
        return hidden

    def compact(self) -> CompactionResult:
        """Fold the delta into a fresh base, dropping tombstoned rows.

        The new base is exactly :meth:`Snapshot.logical` of the
        pre-compaction state — seg_ids and relative order preserved —
        so query results cannot change across a compaction; only the
        physical layout (and therefore the index builds) does.
        """
        wall0 = time.perf_counter()
        snap = self.snapshot()
        merged = len(snap.live_delta())
        dropped = snap.num_tombstoned_rows
        new_base = snap.logical()
        if len(new_base) == 0:
            raise IngestError("compaction would empty the database")
        self._base = new_base
        self._delta_parts = []
        self._delta_rows = 0
        self._tombstones = set()
        self._base_version += 1
        self._delta_epoch = 0
        self._bump(delta=False)
        self.total_compactions += 1
        return CompactionResult(
            epoch=self._epoch, base_version=self._base_version,
            merged_segments=merged, dropped_segments=dropped,
            new_base_rows=len(new_base),
            wall_seconds=time.perf_counter() - wall0)

    def _bump(self, *, delta: bool) -> None:
        self._epoch += 1
        if delta:
            self._delta_epoch += 1
        self._snapshot = None
