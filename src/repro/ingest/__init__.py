"""Incremental trajectory ingestion with versioned snapshots.

The paper treats index construction as an offline phase over a frozen
database (§V-B): any change to ``D`` would force a full rebuild.  This
package makes the database *mutable without rebuilds*, log-structured
like an LSM tree:

* the **base** is an immutable :class:`~repro.core.types.SegmentArray`
  that the expensive indexes (any of the five engines) are built over;
* appends land in a small mutable **delta** that is searched by
  brute-force scan and unioned with the base engine's results;
* deletes are **tombstones** — trajectory ids filtered from both result
  streams at refinement time, never touching the index;
* a :class:`CompactionPolicy` bounds the delta: when it grows past a
  size or delta/base-ratio threshold, the delta (minus tombstones) is
  merged into a fresh base off the hot path, exactly like GTS-style
  GPU delta indexes merge in the background.

Reads are MVCC-style: :meth:`VersionedDatabase.snapshot` returns an
immutable :class:`Snapshot` pinning ``(base, delta, tombstones)`` under
an epoch counter, so an in-flight request keeps the view it started on
while writers append.  The serving layer
(:class:`~repro.service.QueryService`) keys its engine cache by the
*base* fingerprint, which appends do not change — a warm base index is
reused across ingests instead of invalidated.
"""

from .overlay import overlay_search
from .versioned import (CompactionPolicy, CompactionResult, IngestError,
                        IngestReceipt, Snapshot, VersionedDatabase,
                        as_segments)

__all__ = [
    "CompactionPolicy",
    "CompactionResult",
    "IngestError",
    "IngestReceipt",
    "Snapshot",
    "VersionedDatabase",
    "as_segments",
    "overlay_search",
]
