"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate   build one of the paper's datasets and save it as .npz
info       summarize a saved dataset (sizes, extents, densities)
search     run a distance-threshold search (--verify for an independent
           result check, --trace for a chrome://tracing timeline)
batch      serve repeated query batches through the query service
           (engine cache + planner-driven 'auto' method)
metrics    serve batches and export the service metrics registry
           (Prometheus text or JSON snapshot)
trace      serve batches and export telemetry: a multi-lane
           chrome://tracing timeline, span trees, and the structured
           event log
knn        run the kNN extension over a saved dataset
plan       rank the engines for a workload without running a search
stats      index-statistics report for a dataset
figures    regenerate the paper's figures (series tables) at a scale
report     assemble results/ artifacts into results/REPORT.md
calibrate  re-fit and verify the cost-model constants
chaos      run a seeded fault-injection campaign against the query
           service and print the survival report (ingests fresh
           trajectories mid-campaign so compaction runs under faults;
           --shards N switches to the shard-kill campaign against a
           sharded, replicated service)
standing   run the standing-query exactness campaign: continuous
           subscriptions over a streaming fleet, compactions and a
           mid-stream crash + recovery, every epoch's incremental
           answer pinned byte-identical to from-scratch evaluation
overload   run the seeded overload campaign against the admission-
           controlled gateway: many tenants storm the front door,
           refusals stay typed with retry hints, keyed mutations are
           retried blind (including across a crash + recovery) and
           apply exactly once, every answered search byte-identical
           to a cpu_scan referee
shard      serve query batches through a sharded, replicated service
           (scatter-gather merges checked against a whole-database
           referee; --kill-shard demonstrates partial answers and
           --recover the crash-recovery rejoin)
ingest     replay a dataset as a live ingestion stream: part of the
           trajectories seed the base index, the rest arrive in rounds
           interleaved with query batches (delta overlay + compaction)

Examples
--------
python -m repro generate merger --scale 0.01 --out merger.npz
python -m repro info merger.npz
python -m repro search merger.npz --d 1.5 --method gpu_spatiotemporal \\
    --num-bins 1000 --num-subbins 8 --query-trajectories 8
python -m repro batch merger.npz --d 1.5 --batches 8 --method auto \\
    --num-devices 2 --out responses.json
python -m repro metrics merger.npz --d 1.5 --batches 8
python -m repro trace merger.npz --d 1.5 --num-devices 2 \\
    --out trace.json --spans spans.json --events events.jsonl
python -m repro figures fig5 --scale 0.01
python -m repro chaos --seed 7 --requests 200 --rate 0.15
python -m repro chaos --seed 7 --requests 120 --shards 3 \\
    --kill-shard-every 11
python -m repro standing --seed 7 --epochs 16 --subs 6 --json
python -m repro overload --seed 7 --bursts 10 \\
    --bench-out benchmarks/BENCH_gateway.json
python -m repro shard merger.npz --d 1.5 --shards 3 --replicas 2 \\
    --kill-shard 1 --recover
python -m repro ingest merger.npz --d 1.5 --rounds 6 \\
    --arrivals-per-round 2 --max-delta 256
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core.search import DistanceThresholdSearch
from .durability import KILL_POINTS
from .engines import available
from .data.io import load_segments, save_segments
from .data.merger import MergerConfig, merger_dataset
from .data.queries import queries_from_database
from .data.random_walk import random_dataset, random_dense_dataset

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU distance-threshold trajectory search "
                    "(Gowanlock & Casanova 2015 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a dataset -> .npz")
    p.add_argument("dataset",
                   choices=["random", "random-dense", "merger"])
    p.add_argument("--scale", type=float, default=0.01,
                   help="instance scale relative to the paper (default "
                        "0.01)")
    p.add_argument("--out", required=True, help="output .npz path")

    p = sub.add_parser("info", help="summarize a saved dataset")
    p.add_argument("path")

    p = sub.add_parser("search", help="run a distance-threshold search")
    _add_search_args(p)
    p.add_argument("--d", type=float, required=True,
                   help="query distance threshold")
    p.add_argument("--show", type=int, default=5,
                   help="print the first N result items")
    p.add_argument("--verify", action="store_true",
                   help="independently verify the result set")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a chrome://tracing JSON of the modeled "
                        "timeline (GPU engines only)")

    p = sub.add_parser(
        "batch", help="serve repeated query batches through the "
                      "query service")
    _add_batch_args(p)
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write all responses as JSON")

    p = sub.add_parser(
        "metrics", help="serve batches and export the service "
                        "metrics registry")
    _add_batch_args(p)
    p.add_argument("--format", choices=["prometheus", "json"],
                   default="prometheus",
                   help="exposition format (default: prometheus text)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the exposition to a file instead of "
                        "stdout")

    p = sub.add_parser(
        "trace", help="serve batches and export telemetry (chrome "
                      "trace, span trees, event log)")
    _add_batch_args(p)
    p.add_argument("--out", required=True, metavar="PATH",
                   help="chrome://tracing JSON of the batch across "
                        "device lanes")
    p.add_argument("--spans", default=None, metavar="PATH",
                   help="write the span trees as JSON")
    p.add_argument("--events", default=None, metavar="PATH",
                   help="write the structured event log as JSON lines")
    p.add_argument("--slow-ms", type=float, default=1000.0,
                   help="slow-query threshold in modeled milliseconds "
                        "(default 1000)")

    p = sub.add_parser("knn", help="run the kNN extension")
    _add_search_args(p)
    p.add_argument("--k", type=int, required=True)

    p = sub.add_parser("plan", help="rank engines for a workload")
    _add_search_args(p)
    p.add_argument("--d", type=float, required=True)

    p = sub.add_parser("stats", help="index statistics for a dataset")
    p.add_argument("database")
    p.add_argument("--num-bins", type=int, default=1000)
    p.add_argument("--num-subbins", type=int, default=4)
    p.add_argument("--cells-per-dim", type=int, default=50)
    p.add_argument("--segments-per-mbb", type=int, default=4)

    p = sub.add_parser("report",
                       help="assemble results/ into results/REPORT.md")
    p.add_argument("--results-dir", default="results")

    p = sub.add_parser("figures", help="regenerate paper figures")
    p.add_argument("which",
                   choices=["fig4", "fig5", "fig6", "fig7", "all"])
    p.add_argument("--scale", type=float, default=None,
                   help="override REPRO_SCALE for this run")

    sub.add_parser("calibrate",
                   help="re-fit and verify cost-model constants")

    p = sub.add_parser(
        "chaos", help="run a seeded fault-injection campaign and "
                      "print the survival report")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed: dataset, request schedule, and "
                        "fault activations all derive from it")
    p.add_argument("--requests", type=int, default=200,
                   help="requests to drive through the service "
                        "(default 200)")
    p.add_argument("--rate", type=float, default=0.15,
                   help="base per-operation fault activation rate "
                        "(default 0.15)")
    p.add_argument("--num-devices", type=int, default=2,
                   help="size of the simulated GPU pool (default 2)")
    p.add_argument("--batch-size", type=int, default=8,
                   help="requests per submitted batch (default 8)")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON instead of the "
                        "rendered summary")
    p.add_argument("--ingest-every", type=int, default=13,
                   help="ingest one fresh trajectory every Nth request "
                        "(0 disables mid-campaign ingestion; "
                        "default 13)")
    p.add_argument("--events", default=None, metavar="PATH",
                   help="write the structured telemetry event log as "
                        "JSON lines")
    p.add_argument("--crash-every", type=int, default=0, metavar="N",
                   help="crash-recovery mode: run the durability "
                        "kill-point campaign instead, simulating a "
                        "process crash on the Nth mutation at each "
                        "WAL kill point (0 = ordinary fault-injection "
                        "campaign)")
    p.add_argument("--shards", type=int, default=0, metavar="N",
                   help="shard-chaos mode: run the shard-kill campaign "
                        "against a sharded service with N shards "
                        "(0 = ordinary fault-injection campaign)")
    p.add_argument("--kill-shard-every", type=int, default=11,
                   metavar="K",
                   help="in shard-chaos mode, fire one shard fault "
                        "(replica kill or whole-shard blackout) every "
                        "Kth request (default 11)")
    p.add_argument("--shard-strategy", default="round_robin",
                   choices=["round_robin", "temporal", "spatial"],
                   help="partition strategy for shard-chaos mode "
                        "(default round_robin)")

    p = sub.add_parser(
        "shard", help="serve query batches through a sharded, "
                      "replicated service with scatter-gather merges")
    p.add_argument("database", help=".npz produced by 'generate'")
    p.add_argument("--d", type=float, required=True,
                   help="query distance threshold")
    p.add_argument("--shards", type=int, default=3,
                   help="number of shards (default 3)")
    p.add_argument("--replicas", type=int, default=2,
                   help="replicas per shard (default 2)")
    p.add_argument("--strategy", default="round_robin",
                   choices=["round_robin", "temporal", "spatial"],
                   help="partition strategy (default round_robin)")
    p.add_argument("--batches", type=int, default=6,
                   help="query batches to serve (default 6)")
    p.add_argument("--method", default="auto",
                   choices=list(available()) + ["auto"],
                   help="engine, or 'auto' for planner-driven "
                        "selection")
    p.add_argument("--query-trajectories", type=int, default=4,
                   help="trajectories sampled as the repeated query "
                        "batch (default 4)")
    p.add_argument("--kill-shard", type=int, default=None, metavar="S",
                   help="black out shard S halfway through the "
                        "batches (demonstrates partial answers)")
    p.add_argument("--recover", action="store_true",
                   help="crash-recover the blacked-out shard after "
                        "the batches and verify exactness returns")
    p.add_argument("--durable-dir", default=None, metavar="DIR",
                   help="root for per-replica WAL + checkpoints "
                        "(shard-<i>/replica-<r>); default: in-memory "
                        "replicas")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit the run summary as JSON instead of the "
                        "rendered report")

    p = sub.add_parser(
        "ingest", help="replay a dataset as a live ingestion stream "
                       "against the query service")
    p.add_argument("database", help=".npz produced by 'generate'")
    p.add_argument("--d", type=float, required=True,
                   help="query distance threshold")
    p.add_argument("--method", default="auto",
                   choices=list(available()) + ["auto"],
                   help="engine, or 'auto' for planner-driven "
                        "selection")
    p.add_argument("--rounds", type=int, default=6,
                   help="ingest+query rounds to drive (default 6)")
    p.add_argument("--arrivals-per-round", type=int, default=2,
                   help="trajectories ingested per round (default 2)")
    p.add_argument("--initial-fraction", type=float, default=0.6,
                   help="fraction of trajectories seeding the base "
                        "index; the rest arrive as the stream "
                        "(default 0.6)")
    p.add_argument("--delete-every", type=int, default=0,
                   help="tombstone the oldest ingested trajectory "
                        "every Nth round (0 = never)")
    p.add_argument("--max-delta", type=int, default=None,
                   help="compaction trigger: delta rows before the "
                        "service folds the delta into a fresh base "
                        "(default: the policy default)")
    p.add_argument("--num-devices", type=int, default=1,
                   help="size of the simulated GPU pool")
    p.add_argument("--query-trajectories", type=int, default=4,
                   help="trajectories sampled as the repeated query "
                        "batch (default 4)")
    p.add_argument("--rate", type=float, default=0.0,
                   help="fault-injection rate for a chaos-flavoured "
                        "run (0 = no faults; faults can then fire "
                        "mid-compaction)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit the final stats as JSON instead of the "
                        "rendered summary")
    p.add_argument("--durable-dir", default=None, metavar="DIR",
                   help="make the run durable: WAL every mutation "
                        "into DIR and checkpoint periodically, so a "
                        "crash is recoverable with 'repro recover'")

    p = sub.add_parser(
        "standing", help="run the standing-query exactness campaign: "
                         "a streaming fleet, continuous subscriptions, "
                         "forced compactions, and a mid-stream crash + "
                         "recovery, every epoch pinned byte-identical "
                         "to from-scratch evaluation")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed: fleet stream, subscriptions, "
                        "and crash point all derive from it")
    p.add_argument("--epochs", type=int, default=16,
                   help="workload epochs streamed (default 16)")
    p.add_argument("--subs", type=int, default=6,
                   help="standing subscriptions registered (default 6)")
    p.add_argument("--d", type=float, default=3.0,
                   help="subscription distance threshold (default 3)")
    p.add_argument("--kill-point", default="wal_post_append",
                   choices=list(KILL_POINTS),
                   help="kill-point class for the mid-stream crash "
                        "(default wal_post_append)")
    p.add_argument("--crash-on-op", type=int, default=None, metavar="N",
                   help="crash on exactly the Nth mutation (default: "
                        "mid-schedule; WAL kill points only)")
    p.add_argument("--faults", action="store_true",
                   help="also wire a device fault injector and probe "
                        "the one-shot path mid-campaign")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON instead of the "
                        "rendered summary")

    p = sub.add_parser(
        "overload", help="run the seeded overload campaign against "
                         "the admission-controlled gateway: tenant "
                         "rate limits, priority shedding, brownout, "
                         "idempotent retries across a crash, and a "
                         "byte-identical cpu_scan referee")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed: dataset, tenants, arrival "
                        "schedule, and fault activations all derive "
                        "from it")
    p.add_argument("--bursts", type=int, default=10,
                   help="arrival bursts to drive (default 10)")
    p.add_argument("--queue-depth", type=int, default=5,
                   help="per-priority admission queue depth "
                        "(default 5; the interactive flood "
                        "deliberately exceeds it)")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON instead of the "
                        "rendered summary")
    p.add_argument("--bench-out", default=None, metavar="PATH",
                   help="merge this run's modeled latency/outcome "
                        "entry (keyed by seed) into a benchmark JSON "
                        "file")

    p = sub.add_parser(
        "checkpoint", help="force a durable checkpoint of a "
                           "durability directory")
    p.add_argument("dir", help="durability directory (as passed to "
                               "'ingest --durable-dir')")
    p.add_argument("--database", default=None, metavar="NPZ",
                   help="bootstrap: attach this dataset as a new "
                        "durable database (the directory must be "
                        "empty of durable state)")
    p.add_argument("--json", action="store_true",
                   help="emit stats as JSON instead of a summary")

    p = sub.add_parser(
        "recover", help="rebuild a service from a durability "
                        "directory and report the recovery")
    p.add_argument("dir", help="durability directory to recover")
    p.add_argument("--checkpoint", action="store_true",
                   help="write a fresh checkpoint after recovery "
                        "(folds the replayed WAL tail in)")
    p.add_argument("--json", action="store_true",
                   help="emit the recovery summary as JSON")
    return parser


def _add_batch_args(p: argparse.ArgumentParser) -> None:
    """Arguments shared by the service-driving subcommands
    (``batch`` / ``metrics`` / ``trace``)."""
    p.add_argument("database", help=".npz produced by 'generate'")
    p.add_argument("--d", type=float, default=None,
                   help="query distance threshold (required unless "
                        "--requests supplies per-request values)")
    p.add_argument("--batches", type=int, default=8,
                   help="number of query batches to synthesize "
                        "(default 8); ignored with --requests")
    p.add_argument("--requests", default=None, metavar="PATH",
                   help="JSON file with a list of SearchRequest dicts "
                        "(overrides batch synthesis)")
    p.add_argument("--method", default="auto",
                   choices=list(available()) + ["auto"],
                   help="engine, or 'auto' for planner-driven selection")
    p.add_argument("--num-devices", type=int, default=1,
                   help="size of the simulated GPU pool")
    p.add_argument("--shards", type=int, default=1,
                   help="partition the database across this many "
                        "concurrent shards per request")
    p.add_argument("--query-trajectories", type=int, default=4,
                   help="trajectories sampled per synthesized batch")
    p.add_argument("--num-bins", type=int, default=1000)
    p.add_argument("--num-subbins", type=int, default=4)
    p.add_argument("--cells-per-dim", type=int, default=50)
    p.add_argument("--segments-per-mbb", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)


def _add_search_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("database", help=".npz produced by 'generate'")
    p.add_argument("--method", default="gpu_spatiotemporal",
                   choices=list(available()))
    p.add_argument("--queries", default=None,
                   help=".npz query set (default: sample from the "
                        "database)")
    p.add_argument("--query-trajectories", type=int, default=4,
                   help="trajectories to sample as queries when no "
                        "--queries file is given")
    p.add_argument("--num-bins", type=int, default=1000)
    p.add_argument("--num-subbins", type=int, default=4)
    p.add_argument("--cells-per-dim", type=int, default=50)
    p.add_argument("--segments-per-mbb", type=int, default=4)
    p.add_argument("--exclude-same-trajectory", action="store_true")
    p.add_argument("--seed", type=int, default=0)


def _engine_params(args: argparse.Namespace) -> dict:
    method = args.method
    if method == "gpu_temporal":
        return {"num_bins": args.num_bins}
    if method == "gpu_spatiotemporal":
        return {"num_bins": args.num_bins,
                "num_subbins": args.num_subbins,
                "strict_subbins": False}
    if method == "gpu_spatial":
        return {"cells_per_dim": args.cells_per_dim}
    return {"segments_per_mbb": args.segments_per_mbb}


def _load_workload(args: argparse.Namespace):
    database = load_segments(args.database)
    if args.queries:
        queries = load_segments(args.queries)
    else:
        queries = queries_from_database(
            database, args.query_trajectories,
            rng=np.random.default_rng(args.seed))
    return database, queries


def cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "random":
        db = random_dataset(scale=args.scale)
    elif args.dataset == "random-dense":
        db = random_dense_dataset(scale=args.scale)
    else:
        n = max(1, int(round(65_536 * args.scale)))
        db = merger_dataset(cfg=MergerConfig(particles_per_disk=n))
    save_segments(args.out, db)
    print(f"wrote {args.out}: {len(db)} segments, "
          f"{db.num_trajectories} trajectories")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    db = load_segments(args.path)
    mins, maxs = db.spatial_bounds()
    t_lo, t_hi = db.temporal_extent
    ext = db.max_spatial_extent()
    print(f"{args.path}")
    print(f"  segments:        {len(db)}")
    print(f"  trajectories:    {db.num_trajectories}")
    print(f"  spatial bounds:  {np.round(mins, 3)} .. "
          f"{np.round(maxs, 3)}")
    print(f"  temporal extent: [{t_lo:.3f}, {t_hi:.3f}]")
    print(f"  max segment spatial extent per dim: {np.round(ext, 4)}")
    print(f"  device footprint: {db.nbytes() / (1 << 20):.1f} MiB")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    database, queries = _load_workload(args)
    search = DistanceThresholdSearch(database, method=args.method,
                                     **_engine_params(args))
    outcome = search.run(
        queries, args.d,
        exclude_same_trajectory=args.exclude_same_trajectory)
    rs = outcome.results
    print(f"engine {args.method}: {len(rs)} results for "
          f"{len(queries)} query segments at d = {args.d}")
    print(f"modeled response time: {outcome.modeled_seconds:.6f} s "
          f"(compute {outcome.modeled.compute:.6f}, transfers "
          f"{outcome.modeled.transfers:.6f})")
    prof = outcome.profile
    if hasattr(prof, "num_kernel_invocations"):
        print(f"kernel invocations: {prof.num_kernel_invocations}, "
              f"comparisons: {prof.total_comparisons}, "
              f"divergence: {prof.divergence_factor():.2f}")
    for i in range(min(args.show, len(rs))):
        print(f"  q{rs.q_ids[i]} ~ e{rs.e_ids[i]} during "
              f"[{rs.t_lo[i]:.4f}, {rs.t_hi[i]:.4f}]")
    if args.trace:
        from .gpu.profiler import SearchProfile
        if isinstance(prof, SearchProfile):
            from .gpu.trace import write_trace
            path = write_trace(prof, args.trace)
            print(f"trace written to {path}")
        else:
            print("--trace requires a GPU engine; skipped")
    if args.verify:
        from .core.verify import verify_results
        report = verify_results(
            rs, queries, search.engine.database, args.d,
            exclude_same_trajectory=args.exclude_same_trajectory)
        print(f"verification: "
              f"{'PASS' if report.ok else 'FAIL'} "
              f"({report.items_checked} items, "
              f"{report.pairs_spot_checked} spot pairs)")
        if not report.ok:
            return 1
    return 0


def _batch_requests(args: argparse.Namespace, database):
    """Load or synthesize the request list for the service commands."""
    import json

    from .service import SearchRequest

    if args.requests:
        with open(args.requests) as fh:
            return [SearchRequest.from_dict(p) for p in json.load(fh)]
    if args.d is None:
        print(f"repro {args.command}: error: --d is required when "
              f"synthesizing batches (no --requests)", file=sys.stderr)
        return None
    # Repeated batches over the same database: the workload the
    # engine cache exists for.
    params = {} if args.method == "auto" else _batch_params(args)
    requests = []
    for i in range(args.batches):
        queries = queries_from_database(
            database, args.query_trajectories,
            rng=np.random.default_rng(args.seed + i))
        requests.append(SearchRequest(
            queries=queries, d=args.d, method=args.method,
            params=params, shards=args.shards,
            request_id=f"batch-{i}"))
    return requests


def _run_service(args: argparse.Namespace, telemetry=None):
    """Build the service, serve the batches, return both (or None on a
    usage error already reported to stderr)."""
    from .service import QueryService

    database = load_segments(args.database)
    requests = _batch_requests(args, database)
    if requests is None:
        return None, None
    service = QueryService(database, num_devices=args.num_devices,
                           telemetry=telemetry)
    responses = [service.submit(req) for req in requests]
    return service, responses


def cmd_batch(args: argparse.Namespace) -> int:
    import json

    service, responses = _run_service(args)
    if service is None:
        return 2
    for resp in responses:
        m = resp.metrics
        if not resp.ok:
            print(f"{resp.request_id or '-':>10s}  "
                  f"{'rejected: ' + resp.status:18s} "
                  f"{'-':>6s} results  wait {m.queue_wait_s:.6f} s")
            continue
        flags = []
        if m.cache_hit:
            flags.append("cache-hit")
        if m.degraded:
            flags.append(f"degraded({m.degradation_reason.split(':')[0]})")
        print(f"{resp.request_id or '-':>10s}  {m.engine:18s} "
              f"{len(resp.outcome.results):6d} results  "
              f"modeled {m.modeled_seconds:.6f} s  "
              f"wait {m.queue_wait_s:.6f} s"
              f"{'  [' + ', '.join(flags) + ']' if flags else ''}")
    stats = service.stats()
    cache = stats["cache"]
    print(f"served {stats['num_requests']} batches on "
          f"{stats['num_devices']} device(s): cache {cache['hits']} "
          f"hits / {cache['misses']} misses / {cache['evictions']} "
          f"evictions, {stats['degradations']} degradations, "
          f"modeled makespan {stats['clock_s']:.6f} s")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump([r.to_dict() for r in responses], fh)
        print(f"responses written to {args.out}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    import json

    service, _responses = _run_service(args)
    if service is None:
        return 2
    registry = service.telemetry.metrics
    if args.format == "json":
        text = json.dumps(registry.snapshot(), indent=2)
    else:
        text = registry.to_prometheus_text()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
        print(f"metrics written to {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .obs import Telemetry, write_service_trace

    telemetry = Telemetry(slow_query_threshold_s=args.slow_ms / 1e3)
    service, responses = _run_service(args, telemetry=telemetry)
    if service is None:
        return 2
    path = write_service_trace(responses, args.out,
                               model=service.gpu_model)
    print(f"chrome trace written to {path} "
          f"({len(responses)} requests, "
          f"{service.pool.num_devices} lanes)")
    if args.spans:
        with open(args.spans, "w") as fh:
            json.dump([s.to_dict()
                       for s in telemetry.tracer.roots], fh)
        print(f"span trees written to {args.spans}")
    if args.events:
        telemetry.events.write_jsonl(args.events)
        print(f"event log written to {args.events} "
              f"({len(telemetry.events)} events)")
    if len(telemetry.slow_log):
        print(telemetry.slow_log.render())
    return 0


def _batch_params(args: argparse.Namespace) -> dict:
    if args.method == "gpu_temporal":
        return {"num_bins": args.num_bins}
    if args.method == "gpu_spatiotemporal":
        return {"num_bins": args.num_bins,
                "num_subbins": args.num_subbins,
                "strict_subbins": False}
    if args.method == "gpu_spatial":
        return {"cells_per_dim": args.cells_per_dim}
    if args.method == "cpu_rtree":
        return {"segments_per_mbb": args.segments_per_mbb}
    return {}


def cmd_plan(args: argparse.Namespace) -> int:
    from .core.planner import plan_search
    database, queries = _load_workload(args)
    plans = plan_search(database, queries, args.d,
                        num_bins=args.num_bins,
                        num_subbins=args.num_subbins,
                        cells_per_dim=args.cells_per_dim,
                        segments_per_mbb=args.segments_per_mbb)
    print(f"engine ranking for |D|={len(database)}, "
          f"|Q|={len(queries)}, d={args.d}:")
    for rank, p in enumerate(plans, 1):
        print(f"  {rank}. {p.engine:20s} ~{p.est_seconds:.6f} s "
              f"(~{p.est_candidates_per_query:.0f} candidates/query)")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from .indexes import (FlatGrid, RTree, SpatioTemporalIndex,
                          TemporalIndex, describe)
    db = load_segments(args.database)
    grid = FlatGrid.build(db, args.cells_per_dim)
    print("FSG:", describe(grid, db))
    print("Temporal:", describe(TemporalIndex.build(db, args.num_bins)))
    print("SpatioTemporal:", describe(SpatioTemporalIndex.build(
        db, args.num_bins, args.num_subbins, strict=False)))
    print("RTree:", describe(RTree.build(
        db, segments_per_mbb=args.segments_per_mbb)))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .experiments.paper_report import write_report
    path = write_report(args.results_dir)
    print(f"wrote {path}")
    return 0


def cmd_knn(args: argparse.Namespace) -> int:
    from .core.knn import TrajectoryKnn
    database, queries = _load_workload(args)
    knn = TrajectoryKnn(database, method=args.method,
                        **_engine_params(args))
    res = knn.query(queries, args.k,
                    exclude_same_trajectory=args.exclude_same_trajectory)
    found = int(np.count_nonzero(res.counts == args.k))
    print(f"kNN (k={args.k}) over {len(queries)} query segments: "
          f"{found} with full neighbour lists")
    for i in range(min(5, len(res))):
        ids = [int(v) for v in res.neighbor_ids[i, :res.counts[i]]]
        ds = [round(float(v), 4)
              for v in res.distances[i, :res.counts[i]]]
        print(f"  q{queries.seg_ids[i]}: neighbours {ids} at {ds}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from .experiments import (fig4_random, fig5_merger,
                              fig6_random_dense, fig7_ratios,
                              records_to_series, series_table)
    wanted = (["fig4", "fig5", "fig6", "fig7"] if args.which == "all"
              else [args.which])
    for which in wanted:
        if which == "fig7":
            ratios = fig7_ratios(args.scale)
            print("Fig. 7 — GPU/CPU response-time ratios")
            for scen, rows in ratios.items():
                for d, eng, ratio in rows:
                    print(f"  {scen:18s} d={d:<8g} {eng:20s} "
                          f"{ratio:6.2f}x")
            continue
        fn = {"fig4": fig4_random, "fig5": fig5_merger,
              "fig6": fig6_random_dense}[which]
        records = fn(args.scale)
        d, series = records_to_series(records)
        print(series_table(f"{which} (modeled seconds)", d, series))
        print()
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    from .experiments.calibration import (PAPER_ANCHORS, fit_cpu_cycles,
                                          fit_gpu_cycles,
                                          verify_calibration)
    gpu = fit_gpu_cycles([PAPER_ANCHORS["gpu_temporal_merger_d0.001"],
                          PAPER_ANCHORS["gpu_st_v1_merger_equiv"]])
    cpu = fit_cpu_cycles([PAPER_ANCHORS["cpu_rtree_merger_d0.001"]])
    print("fitted GPU cycle costs:", {k: round(v, 1)
                                      for k, v in gpu.cycles.items()})
    print("fitted CPU cycle costs:", {k: round(v, 1)
                                      for k, v in cpu.cycles.items()})
    errors = verify_calibration()
    print("shipped-constant residuals vs paper anchors:")
    for name, err in errors.items():
        print(f"  {name:32s} {100 * err:+6.1f} %")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from .faults import CampaignConfig, run_campaign
    from .obs import Telemetry

    if args.crash_every:
        from .faults import CrashCampaignConfig, run_crash_campaign
        cfg = CrashCampaignConfig(
            seed=args.seed,
            num_ops=max(12, 2 * args.crash_every),
            crash_on_op=args.crash_every)
        report = run_crash_campaign(cfg)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        return 0 if report.ok else 1

    telemetry = Telemetry() if args.events else None
    if args.shards:
        from .faults import ShardCampaignConfig, run_shard_campaign
        cfg = ShardCampaignConfig(seed=args.seed,
                                  num_requests=args.requests,
                                  num_shards=args.shards,
                                  kill_every=args.kill_shard_every,
                                  strategy=args.shard_strategy)
        report = run_shard_campaign(cfg, telemetry=telemetry)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2))
        else:
            print(report.render())
        if args.events:
            telemetry.events.write_jsonl(args.events)
            print(f"event log written to {args.events} "
                  f"({len(telemetry.events)} events)")
        return 0 if report.ok else 1

    cfg = CampaignConfig(seed=args.seed, num_requests=args.requests,
                         injection_rate=args.rate,
                         num_devices=args.num_devices,
                         batch_size=args.batch_size,
                         ingest_every=args.ingest_every)
    report = run_campaign(cfg, telemetry=telemetry)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    if args.events:
        telemetry.events.write_jsonl(args.events)
        print(f"event log written to {args.events} "
              f"({len(telemetry.events)} events)")
    return 0 if report.ok else 1


def cmd_standing(args: argparse.Namespace) -> int:
    import json

    from .standing import StandingCampaignConfig, run_standing_campaign

    cfg = StandingCampaignConfig(
        seed=args.seed, stream_epochs=args.epochs,
        num_subscriptions=args.subs, d=args.d,
        kill_point=args.kill_point, crash_on_op=args.crash_on_op,
        faults=args.faults)
    report = run_standing_campaign(cfg)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def cmd_overload(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .gateway import OverloadConfig, run_overload_campaign

    cfg = OverloadConfig(seed=args.seed, num_bursts=args.bursts,
                         queue_depth=args.queue_depth)
    report = run_overload_campaign(cfg)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    if args.bench_out:
        path = pathlib.Path(args.bench_out)
        bench: dict = {"benchmark": "gateway_overload", "entries": []}
        if path.exists():
            bench = json.loads(path.read_text())
        entry = report.bench_entry()
        entries = [e for e in bench.get("entries", [])
                   if e.get("seed") != entry["seed"]]
        entries.append(entry)
        bench["entries"] = sorted(entries, key=lambda e: e["seed"])
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(bench, indent=2) + "\n")
        print(f"bench entry (seed {entry['seed']}) merged into {path}")
    return 0 if report.ok else 1


def cmd_shard(args: argparse.Namespace) -> int:
    import json

    from .engines.cpu_scan import CpuScanEngine
    from .faults.crashes import _result_bytes
    from .service import SearchRequest
    from .sharding import ShardedService

    database = load_segments(args.database)
    queries = queries_from_database(
        database, args.query_trajectories,
        rng=np.random.default_rng(args.seed))
    truth = _result_bytes(
        CpuScanEngine(database).search(queries, args.d)[0])
    kill_at = (args.batches // 2
               if args.kill_shard is not None else None)
    summary: dict = {
        "layout": None, "statuses": {}, "exact": 0,
        "partial": 0, "killed": 0, "recovered": 0,
        "final_exact": None,
    }
    with ShardedService(database, num_shards=args.shards,
                        replicas_per_shard=args.replicas,
                        strategy=args.strategy,
                        durability_root=args.durable_dir) as svc:
        summary["layout"] = svc.plan.describe()
        for i in range(args.batches):
            if kill_at is not None and i == kill_at:
                summary["killed"] = svc.blackout_shard(
                    args.kill_shard)
            resp = svc.submit(SearchRequest(
                queries=queries, d=args.d, method=args.method,
                request_id=f"b{i:03d}"))
            summary["statuses"][resp.status] = \
                summary["statuses"].get(resp.status, 0) + 1
            if resp.status == "ok":
                if _result_bytes(resp.outcome.results) == truth:
                    summary["exact"] += 1
            elif resp.status == "partial":
                summary["partial"] += 1
        if args.recover and args.kill_shard is not None:
            shard = svc.shards[args.kill_shard]
            for replica in shard.replicas:
                if not replica.live:
                    svc.recover_replica(args.kill_shard,
                                        replica.index)
                    summary["recovered"] += 1
            resp = svc.submit(SearchRequest(
                queries=queries, d=args.d, method=args.method,
                request_id="final"))
            summary["final_exact"] = bool(
                resp.ok
                and _result_bytes(resp.outcome.results) == truth)
        summary["stats"] = svc.stats()
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        lay = summary["layout"]
        print(f"sharded service: {lay['num_shards']} shards "
              f"x {args.replicas} replicas ({lay['strategy']})")
        print(f"  segments per shard  {lay['shard_segments']}")
        print(f"  batches served      {summary['statuses']}")
        print(f"  exact full answers  {summary['exact']}")
        if args.kill_shard is not None:
            print(f"  shard {args.kill_shard} blacked out: "
                  f"{summary['killed']} replicas killed, "
                  f"{summary['partial']} partial answers")
        if summary["final_exact"] is not None:
            state = "exact" if summary["final_exact"] else "WRONG"
            print(f"  recovered {summary['recovered']} replicas; "
                  f"post-recovery answer {state}")
    ok_answers = summary["statuses"].get("ok", 0)
    failed = summary["exact"] != ok_answers or \
        summary["final_exact"] is False
    return 1 if failed else 0


def cmd_ingest(args: argparse.Namespace) -> int:
    import json

    from .ingest import CompactionPolicy
    from .service import QueryService, SearchRequest

    database = load_segments(args.database)
    ids = np.unique(database.traj_ids)
    if len(ids) < 2:
        print("repro ingest: error: the dataset needs at least two "
              "trajectories to split into base + stream",
              file=sys.stderr)
        return 2
    k = min(len(ids) - 1,
            max(1, int(round(len(ids) * args.initial_fraction))))
    base_ids, stream_ids = ids[:k], ids[k:]
    base = database.take(
        np.flatnonzero(np.isin(database.traj_ids, base_ids)))
    queries = queries_from_database(
        database, args.query_trajectories,
        rng=np.random.default_rng(args.seed))

    faults = None
    if args.rate > 0:
        from .faults import CampaignConfig, FaultInjector
        faults = FaultInjector(
            CampaignConfig(seed=args.seed,
                           injection_rate=args.rate).fault_specs(),
            seed=args.seed)
    policy = (CompactionPolicy(max_delta_segments=args.max_delta)
              if args.max_delta is not None else None)
    svc = QueryService(base, num_devices=args.num_devices,
                       faults=faults, compaction=policy,
                       durability_dir=args.durable_dir)

    print(f"base: {len(base)} segments / {len(base_ids)} trajectories; "
          f"stream: {len(stream_ids)} trajectories over "
          f"{args.rounds} rounds")
    ingested: list[int] = []
    deleted = 0
    for r in range(args.rounds):
        lo = r * args.arrivals_per_round
        arriving = stream_ids[lo:lo + args.arrivals_per_round]
        line = f"round {r + 1}:"
        if len(arriving):
            rows = database.take(
                np.flatnonzero(np.isin(database.traj_ids, arriving)))
            receipt = svc.ingest(rows)
            ingested.extend(int(t) for t in arriving)
            line += (f" +{receipt.num_segments} seg "
                     f"({len(arriving)} traj)")
        if (args.delete_every and ingested
                and (r + 1) % args.delete_every == 0):
            victim = ingested.pop(0)
            hidden = svc.delete_trajectory(victim)
            deleted += 1
            line += f"  -traj {victim} ({hidden} seg tombstoned)"
        resp = svc.submit(SearchRequest(
            queries=queries, d=args.d, method=args.method,
            request_id=f"round-{r}"))
        m = resp.metrics
        if resp.ok:
            line += (f"  epoch {m.snapshot_epoch}  delta "
                     f"{m.delta_segments:5d}  {m.engine:18s} "
                     f"{len(resp.outcome.results):6d} results  "
                     f"modeled {m.modeled_seconds:.6f} s  "
                     f"(delta scan {m.delta_scan_s:.6f} s)  "
                     f"{'cache-hit' if m.cache_hit else 'built'}")
        else:
            line += f"  rejected: {resp.status}"
        print(line)
    stats = svc.stats()
    svc.shutdown()
    if args.json:
        print(json.dumps(stats, indent=2))
        return 0
    ing = stats["ingest"]
    cache = stats["cache"]
    print(f"ingested {ing['appended_segments']} segments over "
          f"{ing['appends']} appends, {deleted} deletes, "
          f"{ing['compactions']} compactions "
          f"(base v{ing['base_version']}, epoch {ing['epoch']}); "
          f"cache {cache['hits']} hits / {cache['misses']} misses / "
          f"{cache['invalidations']} invalidations")
    if args.durable_dir:
        dur = stats["durability"]
        print(f"durable state in {dur['directory']}: "
              f"{dur['wal_appends']} WAL records "
              f"({dur['wal_bytes']} bytes), "
              f"{dur['checkpoints_written']} checkpoints "
              f"(last at epoch {dur['last_checkpoint_epoch']})")
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    import json

    from .durability import DurabilityManager
    from .service import QueryService

    manager = DurabilityManager(args.dir)
    if not manager.has_state:
        if args.database is None:
            print(f"repro checkpoint: error: {args.dir} holds no "
                  f"durable state; pass --database to bootstrap one",
                  file=sys.stderr)
            return 2
        database = load_segments(args.database)
        svc = QueryService(database, durability_dir=args.dir)
        action = "bootstrapped"
    else:
        if args.database is not None:
            print(f"repro checkpoint: error: {args.dir} already holds "
                  f"a durable database; --database would overwrite it",
                  file=sys.stderr)
            return 2
        svc = QueryService.recover(args.dir)
        svc.checkpoint()
        action = "checkpointed"
    stats = svc.stats()
    svc.shutdown()
    if args.json:
        print(json.dumps(stats["durability"], indent=2))
        return 0
    dur = stats["durability"]
    print(f"{action} {dur['directory']} at epoch "
          f"{stats['ingest']['epoch']}: "
          f"{dur['checkpoints_written']} checkpoints this session, "
          f"last at epoch {dur['last_checkpoint_epoch']}")
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    import json

    from .durability import DurabilityError
    from .service import QueryService

    try:
        svc = QueryService.recover(args.dir)
    except DurabilityError as exc:
        print(f"repro recover: error: {exc}", file=sys.stderr)
        return 2
    result = svc.last_recovery
    if args.checkpoint:
        svc.checkpoint()
    summary = {
        **result.to_dict(),
        "ingest": svc.stats()["ingest"],
    }
    svc.shutdown()
    if args.json:
        print(json.dumps(summary, indent=2))
        return 0
    print(f"recovered {args.dir}: checkpoint epoch "
          f"{result.checkpoint_epoch} + {result.replayed} WAL "
          f"records replayed -> epoch {result.epoch}"
          + (f" ({result.torn_dropped} torn record dropped)"
             if result.torn_dropped else ""))
    if result.invalid_checkpoints or result.tmp_dirs_removed:
        print(f"  swept {result.tmp_dirs_removed} crashed-checkpoint "
              f"tmp dirs, skipped {result.invalid_checkpoints} "
              f"corrupt checkpoints")
    print(f"  prewarm recipes: "
          + (", ".join(r.method for r in result.engines) or "none"))
    if args.checkpoint:
        print("  fresh checkpoint written (WAL tail folded in)")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "generate": cmd_generate,
        "info": cmd_info,
        "search": cmd_search,
        "batch": cmd_batch,
        "metrics": cmd_metrics,
        "trace": cmd_trace,
        "knn": cmd_knn,
        "plan": cmd_plan,
        "stats": cmd_stats,
        "report": cmd_report,
        "figures": cmd_figures,
        "calibrate": cmd_calibrate,
        "chaos": cmd_chaos,
        "standing": cmd_standing,
        "overload": cmd_overload,
        "shard": cmd_shard,
        "ingest": cmd_ingest,
        "checkpoint": cmd_checkpoint,
        "recover": cmd_recover,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
