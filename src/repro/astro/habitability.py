"""The paper's motivating astrobiology application (§I).

Two habitability hazard searches over stellar trajectory databases:

(i)  **Supernova sterilization** — "Find the stars that host a habitable
     planet and are within a distance d of a supernova explosion", with
     the time intervals of exposure.  A supernova is an *event*: a
     position fixed in space during a short time window, modeled as a
     zero-velocity trajectory spanning the window.
(ii) **Close stellar encounters** — "Find the stars that host a habitable
     planet and are within a distance d of any other stellar trajectory"
     (gravitational perturbation of planetary systems by flyby stars).

Both reduce to distance-threshold searches; this module wraps the engines
with the domain bookkeeping: which stars host habitable planets, per-star
exposure episodes, and cumulative time spent inside the hazard radius.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import ResultSet, merge_intervals
from ..core.search import DistanceThresholdSearch
from ..core.types import SegmentArray, Trajectory

__all__ = ["Supernova", "HazardEpisode", "supernova_exposure",
           "close_encounters"]


@dataclass(frozen=True)
class Supernova:
    """A transient radiation event at a fixed position.

    ``duration`` is the window during which the radiation flux matters
    (prompt emission plus the ozone-depletion-relevant aftermath).
    """

    event_id: int
    position: np.ndarray
    t_start: float
    duration: float

    def as_trajectory(self) -> Trajectory:
        """The event as a zero-velocity trajectory over its window."""
        pos = np.asarray(self.position, dtype=np.float64)
        return Trajectory(
            self.event_id,
            np.array([self.t_start, self.t_start + self.duration]),
            np.stack([pos, pos]),
        )


@dataclass(frozen=True)
class HazardEpisode:
    """One star's exposure to one hazard source."""

    star_id: int
    source_id: int
    intervals: list[tuple[float, float]]

    @property
    def total_exposure(self) -> float:
        return sum(hi - lo for lo, hi in self.intervals)

    @property
    def first_contact(self) -> float:
        return self.intervals[0][0]


def _traj_of_seg(segments: SegmentArray) -> dict[int, int]:
    return {int(s): int(t) for s, t in zip(segments.seg_ids,
                                           segments.traj_ids)}


def _episodes(results: ResultSet, q_map: dict[int, int],
              e_map: dict[int, int], *, swap: bool = False
              ) -> list[HazardEpisode]:
    by_traj = results.by_trajectory(q_map, e_map)
    episodes = []
    for (q_traj, e_traj), intervals in sorted(by_traj.items()):
        star, source = (e_traj, q_traj) if swap else (q_traj, e_traj)
        episodes.append(HazardEpisode(star_id=star, source_id=source,
                                      intervals=merge_intervals(intervals)))
    return episodes


def supernova_exposure(
    stars: SegmentArray,
    supernovae: list[Supernova],
    d: float,
    *,
    habitable_star_ids: np.ndarray | None = None,
    method: str = "gpu_spatiotemporal",
    **engine_params,
) -> list[HazardEpisode]:
    """Search (i): stars within ``d`` of any supernova, with intervals.

    The (few) supernovae become the query set and the (many) stellar
    trajectories the database — the cheap direction for an in-memory
    engine.  ``habitable_star_ids`` restricts the report to stars known
    to host habitable planets (all stars if None).
    """
    if not supernovae:
        return []
    queries = SegmentArray.from_trajectories(
        [sn.as_trajectory() for sn in supernovae])
    search = DistanceThresholdSearch(stars, method=method, **engine_params)
    outcome = search.run(queries, d)
    episodes = _episodes(outcome.results, _traj_of_seg(queries),
                         _traj_of_seg(stars), swap=True)
    if habitable_star_ids is not None:
        keep = set(int(s) for s in habitable_star_ids)
        episodes = [e for e in episodes if e.star_id in keep]
    return episodes


def close_encounters(
    stars: SegmentArray,
    d: float,
    *,
    habitable_star_ids: np.ndarray | None = None,
    method: str = "gpu_spatiotemporal",
    **engine_params,
) -> list[HazardEpisode]:
    """Search (ii): stellar flybys — every pair of distinct trajectories
    within ``d`` of each other, with the encounter intervals.

    The query set is the star set itself (or its habitable subset);
    same-trajectory pairs are excluded, matching the paper's continuous
    self-join semantics.
    """
    if habitable_star_ids is not None:
        mask = np.isin(stars.traj_ids, np.asarray(habitable_star_ids))
        queries = stars.take(np.flatnonzero(mask))
        if len(queries) == 0:
            return []
    else:
        queries = stars
    search = DistanceThresholdSearch(stars, method=method, **engine_params)
    outcome = search.run(queries, d, exclude_same_trajectory=True)
    return _episodes(outcome.results, _traj_of_seg(queries),
                     _traj_of_seg(stars))
