"""Astrobiology application layer: the paper's motivating searches."""

from .habitability import (HazardEpisode, Supernova, close_encounters,
                           supernova_exposure)

__all__ = ["HazardEpisode", "Supernova", "close_encounters",
           "supernova_exposure"]
