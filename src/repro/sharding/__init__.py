"""Sharded serving: scatter-gather routing over replicated per-shard
query services, with failover, op-log catch-up, and exact merges."""

from .plan import ShardMap
from .router import MergeInvariantError, Replica, Shard, ShardedService

__all__ = ["MergeInvariantError", "Replica", "Shard", "ShardMap",
           "ShardedService"]
