"""Shard layout and ownership routing for the sharded service.

:class:`ShardMap` is the router's authoritative answer to "which shard
owns this row?".  It is built once from the initial database with the
same strategies as :func:`repro.distributed.partition_database` — so the
initial layout is exactly the cluster partition the paper's §III
deployment describes — and then *extended* as the router ingests new
trajectories:

* ``round_robin`` — whole trajectories.  A known trajectory id keeps
  its shard (trajectory contiguity survives ingestion); a new id goes
  to the least-loaded non-empty shard by current segment count.
* ``temporal`` / ``spatial`` — per-segment value routing.  The initial
  partition's slab boundaries are recorded as cut values, and new
  segments route by ``searchsorted`` on their ``t_start`` (temporal) or
  segment center along the partition axis (spatial) — the same rule
  that placed the initial rows.

Routing is clamped to *non-empty* shards (``num_shards`` larger than
the database yields structurally empty shards that never run a
service), which preserves the disjoint+covering invariant: every
segment is owned by exactly one live shard.

The map also keeps the bookkeeping the router's robustness story needs:
which shards hold a trajectory (deletes fan out to all of them), how
many live trajectories each shard has (refusing a delete that would
empty a shard), and every seg_id owned by each shard (the partial-answer
verifier restricts the referee database to surviving shards).
"""

from __future__ import annotations

import numpy as np

from ..core.types import SegmentArray
from ..distributed.partition import PARTITION_STRATEGIES, partition_indices

__all__ = ["ShardMap"]


class ShardMap:
    """Partition layout plus incremental ownership routing."""

    def __init__(self, database: SegmentArray, num_shards: int,
                 strategy: str = "round_robin") -> None:
        if strategy not in PARTITION_STRATEGIES:
            raise ValueError(f"unknown strategy {strategy!r}; "
                             f"available: "
                             f"{sorted(PARTITION_STRATEGIES)}")
        self.strategy = strategy
        self.num_shards = int(num_shards)
        idx_lists = partition_indices(database, num_shards, strategy)
        self.shard_bases = [database.take(ix) for ix in idx_lists]
        #: seg_id arrays owned per shard (initial base + every routed
        #: append), used to restrict the referee on partial answers.
        self._seg_parts: list[list[np.ndarray]] = [
            [base.seg_ids] for base in self.shard_bases]
        #: trajectory id -> shards holding at least one of its segments.
        self._traj_shards: dict[int, set[int]] = {}
        #: live (non-deleted) trajectory ids per shard.
        self._live_trajs: list[set[int]] = [set()
                                            for _ in range(num_shards)]
        self._seg_counts = [len(b) for b in self.shard_bases]
        for shard, base in enumerate(self.shard_bases):
            for tid in np.unique(base.traj_ids).tolist():
                self._traj_shards.setdefault(int(tid), set()).add(shard)
                self._live_trajs[shard].add(int(tid))
        if strategy == "spatial":
            mins, maxs = database.spatial_bounds()
            self._axis = int(np.argmax(maxs - mins))
        else:
            self._axis = -1
        if strategy == "round_robin":
            # Whole-trajectory ownership; with round_robin a trajectory
            # lives on exactly one shard.
            self._owner = {tid: min(shards) for tid, shards
                           in self._traj_shards.items()}
            self._cuts = None
        else:
            self._owner = None
            self._cuts = self._slab_cuts(database, idx_lists)

    # -- construction helpers ----------------------------------------------------

    def _route_value(self, segments: SegmentArray) -> np.ndarray:
        """The scalar each row routes by under a slab strategy."""
        if self.strategy == "temporal":
            return segments.ts
        return 0.5 * (segments.starts[:, self._axis]
                      + segments.ends[:, self._axis])

    def _slab_cuts(self, database: SegmentArray,
                   idx_lists: list[np.ndarray]) -> np.ndarray:
        """Upper routing bound of each shard but the last (running max
        over the initial slabs, so empty trailing slabs inherit the
        previous bound and ``searchsorted`` never lands on them)."""
        values = self._route_value(database)
        cuts, running = [], -np.inf
        for ix in idx_lists[:-1]:
            if len(ix):
                running = max(running, float(values[ix].max()))
            cuts.append(running)
        return np.asarray(cuts)

    # -- introspection -----------------------------------------------------------

    @property
    def nonempty_shards(self) -> list[int]:
        """Shards that own at least one segment (ever)."""
        return [i for i, n in enumerate(self._seg_counts) if n > 0]

    def seg_ids_of(self, shard: int) -> np.ndarray:
        """Every seg_id ever routed to ``shard`` (tombstoned rows
        included — the referee's logical view hides those itself)."""
        parts = self._seg_parts[shard]
        return (np.concatenate(parts) if parts
                else np.zeros(0, dtype=np.int64))

    def shards_of(self, traj_id: int) -> tuple[int, ...]:
        """Shards holding segments of one trajectory (deletes fan out
        to all of them)."""
        return tuple(sorted(self._traj_shards.get(int(traj_id), ())))

    def knows(self, traj_id: int) -> bool:
        return int(traj_id) in self._traj_shards

    def live_trajectories(self, shard: int) -> int:
        return len(self._live_trajs[shard])

    def would_empty(self, traj_id: int) -> list[int]:
        """Shards that deleting ``traj_id`` would leave without a
        single live trajectory (the per-shard database refuses that)."""
        tid = int(traj_id)
        return [s for s in self.shards_of(tid)
                if self._live_trajs[s] == {tid}]

    # -- routing -----------------------------------------------------------------

    def _clamp(self, shard: int) -> int:
        """Snap a routed index to the nearest non-empty shard (slab
        routing can land on a structurally empty trailing shard)."""
        nonempty = self.nonempty_shards
        if shard in nonempty:
            return shard
        below = [s for s in nonempty if s < shard]
        return below[-1] if below else nonempty[0]

    def assign_append(self, segments: SegmentArray
                      ) -> list[tuple[int, SegmentArray]]:
        """Route (already globally seg_id-stamped) rows to their owning
        shards and record the ownership; returns ``(shard, rows)``
        pairs for every shard that receives at least one row."""
        if self.strategy == "round_robin":
            owners = np.empty(len(segments), dtype=np.int64)
            for i, tid in enumerate(segments.traj_ids.tolist()):
                tid = int(tid)
                owner = self._owner.get(tid)
                if owner is None:
                    owner = min(self.nonempty_shards,
                                key=lambda s: self._seg_counts[s])
                    self._owner[tid] = owner
                owners[i] = owner
        else:
            owners = np.searchsorted(self._cuts,
                                     self._route_value(segments),
                                     side="left")
            owners = np.asarray([self._clamp(int(s)) for s in owners],
                                dtype=np.int64)
        routed = []
        for shard in np.unique(owners).tolist():
            shard = int(shard)
            rows = segments.take(np.flatnonzero(owners == shard))
            self._seg_parts[shard].append(rows.seg_ids)
            self._seg_counts[shard] += len(rows)
            for tid in np.unique(rows.traj_ids).tolist():
                self._traj_shards.setdefault(int(tid), set()).add(shard)
                self._live_trajs[shard].add(int(tid))
            routed.append((shard, rows))
        return routed

    def note_delete(self, traj_id: int) -> None:
        """Record a tombstoned trajectory (it no longer counts as live
        on any shard; ownership of its rows is unchanged — the rows
        stay physically present until the shard compacts)."""
        tid = int(traj_id)
        for shard in self._traj_shards.get(tid, ()):
            self._live_trajs[shard].discard(tid)

    def describe(self) -> dict:
        """JSON-friendly layout summary."""
        return {
            "strategy": self.strategy,
            "num_shards": self.num_shards,
            "shard_segments": list(self._seg_counts),
            "shard_trajectories": [len(s) for s in self._live_trajs],
        }
