"""The sharded service: scatter-gather over per-shard ``QueryService``\\ s.

:class:`ShardedService` is the process-shaped version of the paper's
§III cluster deployment: the database is partitioned across ``N``
shards (:class:`~repro.sharding.plan.ShardMap`), each shard runs
``replicas_per_shard`` independent :class:`~repro.service.QueryService`
instances — each with its own engine cache, WAL, and checkpoint
directory under ``<durability_root>/shard-<i>/replica-<r>`` — and a
router scatter-gathers every :class:`~repro.service.SearchRequest` and
merges the per-shard :class:`~repro.service.SearchResponse`\\ s exactly.

The merge is *checked*, not assumed: shards are disjoint and covering
by construction, so the union of per-shard result sets must contain
exactly ``sum(len(part))`` items after cross-shard deduplication — one
duplicated or lost row raises :class:`MergeInvariantError` rather than
returning a silently wrong answer.

Robustness ladder, per shard leg (see ``docs/ARCHITECTURE.md``):

1. replicas are tried in rotation; a dead replica (killed process) is
   skipped, a live one is guarded by a per-replica
   :class:`~repro.service.resilience.CircuitBreaker`;
2. a replica serving from a *stale epoch* (its ``snapshot_epoch``
   disagrees with the router's per-shard mutation count) is treated as
   divergent: the answer is discarded, counted, and re-fetched from the
   next replica — divergence is never silently merged;
3. a typed rejection (``deadline_exceeded`` under the per-leg
   ``shard_deadline_s``, or ``overloaded``) triggers a *hedged retry*
   on the next replica;
4. when no live replica survives the ladder, the shard is reported
   missing: the request is answered ``status="partial"`` with
   ``missing_shards`` naming the holes — exact over the survivors,
   honest about the rest.  (If some replica answered with a typed
   rejection instead, the whole request is rejected with that status:
   "partial" strictly means *replicas down*, never *replicas busy*.)

Mutations (``ingest`` / ``delete_trajectory`` / ``compact``) route to
the owning shard(s) and are applied synchronously to every live
replica; each shard keeps an op log so a killed replica can rejoin via
``QueryService.recover()`` (its own WAL + checkpoints) and then replay
exactly the operations it missed while dead, by epoch.  Appends are
stamped with *globally* unique seg_ids by the router before routing
(``keep_seg_ids=True`` on the shard append), so every shard-local id
agrees with the whole-database referee and merged answers stay
byte-identical to a single-node search.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..core.result import ResultSet
from ..core.search import SearchOutcome
from ..core.types import SegmentArray
from ..engines.base import Deadline
from ..gpu.costmodel import CostBreakdown
from ..gpu.profiler import CpuSearchProfile, RequestMetrics, SearchProfile
from ..ingest import IngestError, as_segments
from ..obs import Telemetry
from ..service import (QueryService, SearchRequest, SearchResponse)
from ..service.resilience import CircuitBreaker
from .plan import ShardMap

__all__ = ["MergeInvariantError", "Replica", "Shard", "ShardedService"]


class MergeInvariantError(RuntimeError):
    """The scatter-gather merge violated disjointness: the union of
    per-shard result sets lost or duplicated items."""


@dataclass
class Replica:
    """One shard replica: a ``QueryService`` (or a corpse) plus its
    router-side health state."""

    shard_index: int
    index: int
    service: QueryService | None
    durability_dir: Path | None
    breaker: CircuitBreaker
    kills: int = 0
    recoveries: int = 0

    @property
    def live(self) -> bool:
        return self.service is not None

    @property
    def name(self) -> str:
        return f"shard-{self.shard_index}/replica-{self.index}"

    def to_dict(self) -> dict:
        """JSON-friendly health snapshot."""
        return {"shard": self.shard_index, "replica": self.index,
                "live": self.live, "kills": self.kills,
                "recoveries": self.recoveries,
                "epoch": (self.service.versioned.epoch
                          if self.live else None),
                "breaker": self.breaker.to_dict()}


class Shard:
    """One shard: its pristine base, its replicas, and the op log the
    router replays to catch a recovered replica up."""

    def __init__(self, index: int, base: SegmentArray,
                 replicas: list[Replica]) -> None:
        self.index = index
        self.base = base
        self.replicas = replicas
        #: router-side expected epoch: mutations applied to this shard.
        self.epoch = 0
        #: ``(epoch_after, op, payload)`` per mutation, replayed (from
        #: ``epoch_after > recovered_epoch``) when a replica rejoins.
        self.oplog: list[tuple[int, str, object]] = []
        #: rotation pointer for replica selection.
        self.rr = 0

    def live_replicas(self) -> list[Replica]:
        return [r for r in self.replicas if r.live]


class ShardedService:
    """Scatter-gather router over per-shard replicated services.

    Parameters
    ----------
    database:
        The initial (non-empty) segment database; partitioned across
        ``num_shards`` by ``strategy``.
    num_shards, replicas_per_shard, strategy:
        Shard layout.  Structurally empty shards (``num_shards`` larger
        than the database) run no services and serve no traffic.
    durability_root:
        Directory root for per-replica WAL + checkpoints
        (``shard-<i>/replica-<r>``); None = memory-only replicas
        (a killed replica then rejoins from the pristine base plus a
        full op-log replay instead of ``QueryService.recover``).
    shard_deadline_s:
        Per-leg modeled deadline handed to each shard sub-request; a
        leg that exceeds it is hedged on the next replica.
    breaker_threshold, breaker_reset_s:
        Per-replica circuit-breaker tuning (see
        :class:`~repro.service.resilience.CircuitBreaker`).
    telemetry:
        The router's hub (spans ``router.*``, per-shard labeled
        metrics).  Each replica service gets its own private hub;
        :meth:`merged_metrics` folds them into one labeled registry.
    service_kwargs:
        Extra keyword arguments forwarded to every per-shard
        :class:`~repro.service.QueryService` (device counts, fault
        injectors, compaction policy...).  ``auto_compact`` is forced
        off — compaction is a routed, op-logged mutation so replicas
        never diverge on it.
    """

    def __init__(self, database: SegmentArray, *,
                 num_shards: int = 3,
                 replicas_per_shard: int = 2,
                 strategy: str = "round_robin",
                 durability_root=None,
                 shard_deadline_s: float | None = None,
                 breaker_threshold: int = 3,
                 breaker_reset_s: float = 30.0,
                 telemetry: Telemetry | None = None,
                 service_kwargs: dict | None = None) -> None:
        if replicas_per_shard < 1:
            raise ValueError("replicas_per_shard must be >= 1")
        self.telemetry = telemetry or Telemetry()
        self.plan = ShardMap(database, num_shards, strategy)
        self.replicas_per_shard = int(replicas_per_shard)
        self.shard_deadline_s = shard_deadline_s
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self.durability_root = (Path(durability_root)
                                if durability_root is not None else None)
        self.service_kwargs = dict(service_kwargs or {})
        self.service_kwargs["auto_compact"] = False
        self._next_seg_id = int(database.seg_ids.max()) + 1
        self._tombstones: set[int] = set()
        #: router-level idempotency dedup table (key -> receipt); the
        #: router is the single writer stamping global seg_ids, so a
        #: retried keyed mutation must dedup *before* re-stamping.
        self._applied_keys: dict[str, dict] = {}
        self._requests = 0
        self._partial_answers = 0
        self._kill_rotation = 0
        self.shards: list[Shard] = []
        for i, base in enumerate(self.plan.shard_bases):
            replicas: list[Replica] = []
            if len(base) > 0:
                for r in range(self.replicas_per_shard):
                    replicas.append(self._build_replica(i, r, base))
            self.shards.append(Shard(i, base, replicas))
        with self.telemetry.activate():
            self.telemetry.events.emit(
                "router_start", **self.plan.describe(),
                replicas_per_shard=self.replicas_per_shard,
                durable=self.durability_root is not None)

    # -- replica construction ----------------------------------------------------

    def _replica_dir(self, shard: int, replica: int) -> Path | None:
        if self.durability_root is None:
            return None
        return self.durability_root / f"shard-{shard}" \
            / f"replica-{replica}"

    def _build_replica(self, shard: int, index: int,
                       base: SegmentArray) -> Replica:
        directory = self._replica_dir(shard, index)
        service = QueryService(
            base, telemetry=Telemetry(enabled=self.telemetry.enabled),
            durability_dir=directory, **self.service_kwargs)
        return Replica(shard_index=shard, index=index, service=service,
                       durability_dir=directory,
                       breaker=CircuitBreaker(
                           failure_threshold=self.breaker_threshold,
                           reset_after_s=self.breaker_reset_s))

    # -- clocks & helpers --------------------------------------------------------

    def _now(self) -> float:
        """Router modeled clock: the furthest-along live replica."""
        clocks = [r.service._clock for s in self.shards
                  for r in s.replicas if r.live]
        return max(clocks) if clocks else 0.0

    def _counter(self, name: str, help_text: str):
        return self.telemetry.metrics.counter(name, help_text)

    def _note_dedup(self, op: str, key: str) -> None:
        """Count + log one idempotent-retry dedup hit at the router."""
        self._counter("repro_idempotent_dedups_total",
                      "mutations deduplicated by idempotency key").inc(
            op=op)
        self.telemetry.events.emit("idempotent_dedup", op=op,
                                   key=str(key), component="router")

    def _mark_dead(self, replica: Replica, reason: str) -> None:
        """A replica that failed a *mutation* is divergent: kill it so
        it can rejoin through the op-log path instead of serving stale
        answers."""
        replica.service = None
        replica.kills += 1
        self._counter("repro_router_replica_deaths_total",
                      "replicas marked dead by the router").inc(
            shard=str(replica.shard_index), reason=reason)
        self.telemetry.events.emit(
            "replica_dead", shard=replica.shard_index,
            replica=replica.index, reason=reason)

    # -- queries -----------------------------------------------------------------

    def submit(self, request: SearchRequest) -> SearchResponse:
        """Serve one request across all shards (see module docstring
        for the per-shard failover ladder)."""
        with self.telemetry.activate(), \
                self.telemetry.span("router.request",
                                    request_id=request.request_id,
                                    queries=len(request.queries)):
            self._requests += 1
            parts: list[tuple[Shard, SearchResponse]] = []
            missing: list[int] = []
            rejection: SearchResponse | None = None
            # One wall-clock budget for the whole scatter: each shard
            # leg gets the *remaining* budget, never a fresh one, and
            # an exhausted budget is a typed rejection — never
            # "partial", never a dispatch with a non-positive budget.
            deadline = (Deadline.after(request.deadline_s)
                        if request.deadline_s is not None else None)
            for shard in self.shards:
                if not shard.replicas:
                    continue  # structurally empty shard: owns no rows
                if deadline is not None \
                        and deadline.remaining_s() <= 0.0:
                    rejection = rejection or self._deadline_reject(
                        request, where="pre-scatter")
                    break
                kind, resp = self._serve_shard(shard, request, deadline)
                if kind == "ok":
                    parts.append((shard, resp))
                elif kind == "reject":
                    rejection = rejection or resp
                else:
                    missing.append(shard.index)
            response = self._gather(request, parts, missing, rejection)
            self._counter("repro_router_requests_total",
                          "requests routed").inc(status=response.status)
            if response.partial:
                self._partial_answers += 1
            return response

    def submit_batch(self, requests: list[SearchRequest]
                     ) -> list[SearchResponse]:
        """Serve a batch (scatter each request; shard legs of one
        request run concurrently in the modeled-time sense)."""
        return [self.submit(r) for r in requests]

    def _leg_request(self, request: SearchRequest, shard: Shard,
                     budget_s: float | None) -> SearchRequest:
        """One shard sub-request.  Its deadline is the tighter of the
        per-leg ``shard_deadline_s`` and the *remaining* request budget
        (``budget_s``) — a replica never receives a budget larger than
        what is actually left, and the caller guarantees ``budget_s``
        is positive before building the leg."""
        deadline = (self.shard_deadline_s
                    if self.shard_deadline_s is not None
                    else request.deadline_s)
        if budget_s is not None:
            deadline = (budget_s if deadline is None
                        else min(deadline, budget_s))
        return SearchRequest(
            queries=request.queries, d=request.d,
            method=request.method, params=dict(request.params),
            exclude_same_trajectory=request.exclude_same_trajectory,
            deadline_s=deadline,
            request_id=f"{request.request_id}#s{shard.index}")

    def _deadline_reject(self, request: SearchRequest,
                         where: str) -> SearchResponse:
        """Typed rejection for a budget exhausted at the router —
        before a replica ever sees the request."""
        self._counter(
            "repro_router_deadline_rejects_total",
            "requests rejected at the router on an exhausted "
            "deadline").inc()
        self.telemetry.events.emit(
            "router_deadline_exhausted",
            request_id=request.request_id, where=where)
        return SearchResponse(
            request_id=request.request_id, outcome=None,
            metrics=RequestMetrics(engine="router"),
            status="deadline_exceeded",
            reason=f"request budget exhausted at the router "
                   f"({where}); no replica was dispatched")

    def _serve_shard(self, shard: Shard, request: SearchRequest,
                     deadline: Deadline | None = None
                     ) -> tuple[str, SearchResponse | None]:
        """Walk one shard's replica ladder; returns ``("ok", resp)``,
        ``("reject", resp)`` (typed rejection from a live replica), or
        ``("down", None)`` when no live replica could answer."""
        order = [shard.replicas[(shard.rr + k) % len(shard.replicas)]
                 for k in range(len(shard.replicas))]
        shard.rr = (shard.rr + 1) % len(shard.replicas)
        rejection: SearchResponse | None = None
        attempts = 0
        with self.telemetry.span("router.shard",
                                 shard=shard.index) as span:
            for replica in order:
                if not replica.live:
                    continue
                remaining = None
                if deadline is not None:
                    remaining = deadline.remaining_s()
                    if remaining <= 0.0:
                        # Budget gone mid-ladder: stop hedging; a
                        # replica must never see a non-positive budget.
                        rejection = rejection or self._deadline_reject(
                            request, where=f"shard {shard.index} "
                                           f"ladder")
                        break
                now = self._now()
                if not replica.breaker.allow(now):
                    self._counter(
                        "repro_router_breaker_skips_total",
                        "requests skipping an open replica breaker"
                    ).inc(shard=str(shard.index),
                          replica=str(replica.index))
                    continue
                if attempts > 0:
                    # Second and later replicas are hedged retries.
                    self._counter("repro_router_hedges_total",
                                  "hedged retries to another replica"
                                  ).inc(shard=str(shard.index))
                attempts += 1
                leg = self._leg_request(request, shard, remaining)
                try:
                    resp = replica.service.submit(leg)
                except Exception as exc:  # noqa: BLE001 - failover boundary
                    replica.breaker.record_failure(now)
                    self.telemetry.events.emit(
                        "router_leg_error", shard=shard.index,
                        replica=replica.index,
                        error=f"{type(exc).__name__}: {exc}")
                    continue
                if resp.ok:
                    if resp.metrics.snapshot_epoch != shard.epoch:
                        # Divergent replica: stale epoch.  Never merge;
                        # re-fetch from the next replica.
                        replica.breaker.record_failure(now)
                        self._counter(
                            "repro_router_epoch_mismatch_total",
                            "stale-epoch replica answers discarded"
                        ).inc(shard=str(shard.index),
                              replica=str(replica.index))
                        self.telemetry.events.emit(
                            "epoch_mismatch", shard=shard.index,
                            replica=replica.index,
                            expected=shard.epoch,
                            got=resp.metrics.snapshot_epoch)
                        continue
                    replica.breaker.record_success()
                    self._counter("repro_router_shard_serves_total",
                                  "shard legs served").inc(
                        shard=str(shard.index),
                        replica=str(replica.index))
                    span.set_attributes(replica=replica.index,
                                        epoch=shard.epoch)
                    return "ok", resp
                # Typed rejection (deadline_exceeded / overloaded):
                # hedge on the next replica.
                replica.breaker.record_failure(now)
                rejection = rejection or resp
            span.set_attributes(outcome="reject" if rejection
                                else "down")
        if rejection is not None:
            return "reject", rejection
        self._counter("repro_router_shard_down_total",
                      "shard legs with no live replica").inc(
            shard=str(shard.index))
        return "down", None

    # -- merge -------------------------------------------------------------------

    def _gather(self, request: SearchRequest,
                parts: list[tuple[Shard, SearchResponse]],
                missing: list[int],
                rejection: SearchResponse | None) -> SearchResponse:
        if rejection is not None:
            # A live replica answered with a typed rejection: the whole
            # request is rejected (never downgraded to "partial" — a
            # busy shard is not a dead shard).  A router-originated
            # rejection (deadline exhausted pre-dispatch) passes
            # through verbatim.
            if rejection.metrics.engine == "router":
                return rejection
            return SearchResponse(
                request_id=request.request_id, outcome=None,
                metrics=RequestMetrics(engine="router"),
                status=rejection.status,
                reason=f"shard leg rejected: {rejection.reason}")
        with self.telemetry.span("router.merge",
                                 parts=len(parts),
                                 missing=len(missing)):
            outcome = self._merge_outcomes(request, parts)
            metrics = self._merge_metrics(parts)
            if missing:
                return SearchResponse(
                    request_id=request.request_id, outcome=outcome,
                    metrics=metrics, status="partial",
                    reason=(f"no live replica for shard(s) "
                            f"{sorted(missing)}"),
                    missing_shards=tuple(sorted(missing)))
            return SearchResponse(request_id=request.request_id,
                                  outcome=outcome, metrics=metrics)

    def _merge_outcomes(self, request: SearchRequest,
                        parts: list[tuple[Shard, SearchResponse]]
                        ) -> SearchOutcome:
        outcomes = [resp.outcome for _, resp in parts]
        if not outcomes:
            # Every shard dark: an exact answer over zero shards.
            return SearchOutcome(
                results=ResultSet(),
                profile=CpuSearchProfile(
                    engine="router",
                    num_queries=len(request.queries)),
                modeled=CostBreakdown())
        results = ResultSet.from_parts(
            [o.results for o in outcomes]).deduplicated()
        expected = sum(len(o.results) for o in outcomes)
        if len(results) != expected:
            self._counter("repro_router_merge_violations_total",
                          "merges that lost or duplicated items").inc()
            raise MergeInvariantError(
                f"shards are not disjoint: union has {len(results)} "
                f"items, shard parts sum to {expected}")
        profiles = [o.profile for o in outcomes]
        engines = {p.engine for p in profiles}
        label = engines.pop() if len(engines) == 1 else "mixed"
        if all(isinstance(p, SearchProfile) for p in profiles):
            profile: SearchProfile | CpuSearchProfile = SearchProfile(
                engine=label,
                num_queries=profiles[0].num_queries,
                kernel_stats=[s for p in profiles
                              for s in p.kernel_stats],
                h2d_bytes=sum(p.h2d_bytes for p in profiles),
                d2h_bytes=sum(p.d2h_bytes for p in profiles),
                num_transfers=sum(p.num_transfers for p in profiles),
                schedule_items=sum(p.schedule_items for p in profiles),
                redo_queries=sum(p.redo_queries for p in profiles),
                defaulted_queries=sum(p.defaulted_queries
                                      for p in profiles),
                raw_result_items=sum(p.raw_result_items
                                     for p in profiles),
                result_items=len(results),
                index_bytes=sum(p.index_bytes for p in profiles),
                wall_seconds=sum(p.wall_seconds for p in profiles),
                attempts=max(p.attempts for p in profiles),
                backoff_s=sum(p.backoff_s for p in profiles),
            )
        else:
            profile = CpuSearchProfile(
                engine=label,
                num_queries=profiles[0].num_queries,
                node_visits=sum(getattr(p, "node_visits", 0)
                                for p in profiles),
                comparisons=sum(getattr(p, "comparisons", 0)
                                for p in profiles),
                result_items=len(results),
                index_bytes=sum(p.index_bytes for p in profiles),
                wall_seconds=sum(p.wall_seconds for p in profiles),
            )
        # Shards run concurrently: modeled response time is the slowest
        # shard leg, exactly like the cluster model.
        slowest = max(outcomes, key=lambda o: o.modeled.total)
        return SearchOutcome(results=results, profile=profile,
                             modeled=slowest.modeled)

    @staticmethod
    def _merge_metrics(parts: list[tuple[Shard, SearchResponse]]
                       ) -> RequestMetrics:
        if not parts:
            return RequestMetrics(engine="router")
        ms = [resp.metrics for _, resp in parts]
        engines = {m.engine for m in ms}
        spans = []
        for shard, resp in parts:
            for span in resp.metrics.lane_spans:
                spans.append({**span, "shard": shard.index})
        return RequestMetrics(
            engine=engines.pop() if len(engines) == 1 else "mixed",
            queue_wait_s=max(m.queue_wait_s for m in ms),
            cache_hit=all(m.cache_hit for m in ms),
            engine_build_s=sum(m.engine_build_s for m in ms),
            invocations=sum(m.invocations for m in ms),
            modeled_seconds=max(m.modeled_seconds for m in ms),
            wall_seconds=sum(m.wall_seconds for m in ms),
            degraded=any(m.degraded for m in ms),
            degradation_reason="; ".join(
                sorted({m.degradation_reason for m in ms
                        if m.degradation_reason})),
            attempts=max(m.attempts for m in ms),
            backoff_s=sum(m.backoff_s for m in ms),
            failovers=sum(m.failovers for m in ms),
            arrival_s=max(m.arrival_s for m in ms),
            lane_spans=spans,
            snapshot_epoch=max(m.snapshot_epoch for m in ms),
            delta_segments=sum(m.delta_segments for m in ms),
            delta_scan_s=max(m.delta_scan_s for m in ms),
        )

    # -- mutations ---------------------------------------------------------------

    def ingest(self, segments, *,
               idempotency_key: str | None = None) -> dict:
        """Stamp, route, and replicate one append; returns a receipt
        with the per-shard routing and epochs.  ``idempotency_key``
        deduplicates client retries: a known key returns the original
        receipt (``deduplicated: True``) without re-stamping or
        re-routing anything."""
        with self.telemetry.activate(), \
                self.telemetry.span("router.ingest") as span:
            if idempotency_key is not None:
                prior = self._applied_keys.get(str(idempotency_key))
                if prior is not None:
                    if prior.get("op") != "append":
                        raise IngestError(
                            f"idempotency key {idempotency_key!r} "
                            f"named a {prior.get('op')!r} mutation, "
                            f"not an append")
                    self._note_dedup("append", idempotency_key)
                    return {**{k: v for k, v in prior.items()
                               if k != "op"}, "deduplicated": True}
            segments = as_segments(segments)
            if len(segments) == 0:
                raise IngestError("nothing to append: the segment set "
                                  "is empty")
            dead = self._tombstones.intersection(
                np.unique(segments.traj_ids).tolist())
            if dead:
                raise IngestError(
                    f"trajectory ids {sorted(dead)} are tombstoned; "
                    f"the router does not re-use deleted ids")
            n = len(segments)
            seg_ids = np.arange(self._next_seg_id,
                                self._next_seg_id + n, dtype=np.int64)
            self._next_seg_id += n
            stamped = SegmentArray(
                segments.xs, segments.ys, segments.zs, segments.ts,
                segments.xe, segments.ye, segments.ze, segments.te,
                segments.traj_ids, seg_ids)
            routed = self.plan.assign_append(stamped)
            receipt = {"segments": n, "routed": {}, "epochs": {}}
            for shard_index, rows in routed:
                shard = self.shards[shard_index]
                self._apply(shard, "append", rows)
                receipt["routed"][shard_index] = len(rows)
                receipt["epochs"][shard_index] = shard.epoch
                self._maybe_compact(shard)
            span.set_attributes(segments=n,
                                shards=len(receipt["routed"]))
            self._counter("repro_router_ingest_total",
                          "router appends").inc()
            if idempotency_key is not None:
                self._applied_keys[str(idempotency_key)] = {
                    "op": "append", **receipt}
            return receipt

    def delete_trajectory(self, traj_id: int, *,
                          idempotency_key: str | None = None) -> int:
        """Tombstone one trajectory on every shard holding it; returns
        the total number of segments hidden.  ``idempotency_key``
        deduplicates client retries the same way :meth:`ingest` does."""
        with self.telemetry.activate(), \
                self.telemetry.span("router.delete",
                                    traj_id=int(traj_id)):
            if idempotency_key is not None:
                prior = self._applied_keys.get(str(idempotency_key))
                if prior is not None:
                    if prior.get("op") != "delete":
                        raise IngestError(
                            f"idempotency key {idempotency_key!r} "
                            f"named a {prior.get('op')!r} mutation, "
                            f"not a delete")
                    self._note_dedup("delete", idempotency_key)
                    return int(prior["hidden"])
            tid = int(traj_id)
            if tid in self._tombstones:
                return 0
            if not self.plan.knows(tid):
                raise IngestError(f"trajectory {tid} is not in the "
                                  f"database")
            blocked = self.plan.would_empty(tid)
            if blocked:
                raise IngestError(
                    f"refusing to delete trajectory {tid}: it is the "
                    f"last live trajectory of shard(s) {blocked}")
            hidden = 0
            for shard_index in self.plan.shards_of(tid):
                shard = self.shards[shard_index]
                hidden += self._apply(shard, "delete", tid) or 0
                self._maybe_compact(shard)
            self._tombstones.add(tid)
            self.plan.note_delete(tid)
            self._counter("repro_router_deletes_total",
                          "router tombstones").inc()
            if idempotency_key is not None:
                self._applied_keys[str(idempotency_key)] = {
                    "op": "delete", "traj_id": tid, "hidden": hidden}
            return hidden

    def compact(self, shard_index: int | None = None) -> None:
        """Route an explicit compaction to one shard (or all)."""
        with self.telemetry.activate():
            targets = ([self.shards[shard_index]]
                       if shard_index is not None else
                       [s for s in self.shards if s.replicas])
            for shard in targets:
                self._apply(shard, "compact", None)

    def _apply(self, shard: Shard, op: str, payload):
        """Apply one mutation to every live replica of a shard,
        op-log it, and advance the shard's expected epoch.  A replica
        that fails the mutation is marked dead (divergence is fatal
        for a replica, never for the shard)."""
        expected = shard.epoch + 1
        shard.oplog.append((expected, op, payload))
        result = None
        for replica in list(shard.live_replicas()):
            try:
                result = self._apply_one(replica.service, op, payload)
            except Exception:  # noqa: BLE001 - divergence boundary
                self._mark_dead(replica, reason=f"{op}_failed")
                continue
            got = replica.service.versioned.epoch
            if got != expected:
                self._mark_dead(replica, reason="epoch_skew")
        shard.epoch = expected
        self.telemetry.metrics.gauge(
            "repro_shard_epoch", "per-shard mutation epoch").set(
            shard.epoch, shard=str(shard.index))
        self.telemetry.metrics.gauge(
            "repro_shard_live_replicas",
            "live replicas per shard").set(
            len(shard.live_replicas()), shard=str(shard.index))
        return result

    @staticmethod
    def _apply_one(service: QueryService, op: str, payload):
        if op == "append":
            return service.ingest(payload, keep_seg_ids=True)
        if op == "delete":
            return service.delete_trajectory(payload)
        return service.compact()

    def _maybe_compact(self, shard: Shard) -> None:
        """Router-driven compaction: replicas share one policy, so the
        primary's verdict schedules an explicit, op-logged compaction
        for every replica (a dark shard schedules none — the decision
        replays deterministically from the op log on recovery)."""
        live = shard.live_replicas()
        if live and live[0].service.versioned.should_compact():
            self._apply(shard, "compact", None)

    # -- chaos hooks -------------------------------------------------------------

    def kill_replica(self, shard_index: int,
                     replica_index: int | None = None) -> Replica | None:
        """Simulate a replica process death: the service object is
        abandoned *without* shutdown (its WAL stays as a crashed
        process would leave it).  Returns the killed replica, or None
        when the shard has no live replica to kill."""
        shard = self.shards[shard_index]
        live = shard.live_replicas()
        if not live:
            return None
        if replica_index is None:
            replica = live[self._kill_rotation % len(live)]
            self._kill_rotation += 1
        else:
            replica = shard.replicas[replica_index]
            if not replica.live:
                return None
        replica.service = None
        replica.kills += 1
        with self.telemetry.activate():
            self._counter("repro_router_kills_total",
                          "replicas killed by chaos").inc(
                shard=str(shard_index))
            self.telemetry.events.emit("replica_killed",
                                       shard=shard_index,
                                       replica=replica.index)
        return replica

    def blackout_shard(self, shard_index: int) -> int:
        """Kill every live replica of one shard; returns how many
        died.  Until a recovery, requests answer ``partial``."""
        shard = self.shards[shard_index]
        killed = 0
        for replica in shard.live_replicas():
            replica.service = None
            replica.kills += 1
            killed += 1
        if killed:
            with self.telemetry.activate():
                self._counter("repro_router_blackouts_total",
                              "whole-shard blackouts").inc(
                    shard=str(shard_index))
                self.telemetry.events.emit("shard_blackout",
                                           shard=shard_index,
                                           killed=killed)
        return killed

    def recover_replica(self, shard_index: int,
                        replica_index: int) -> Replica:
        """Rejoin one dead replica: ``QueryService.recover()`` from its
        durability directory (prewarmed caches), then replay the op-log
        suffix it missed, by epoch; a memory-only replica rebuilds from
        the pristine shard base and replays the whole log."""
        shard = self.shards[shard_index]
        replica = shard.replicas[replica_index]
        if replica.live:
            raise ValueError(f"{replica.name} is already live")
        with self.telemetry.activate(), \
                self.telemetry.span("router.recover",
                                    shard=shard_index,
                                    replica=replica_index) as span:
            hub = Telemetry(enabled=self.telemetry.enabled)
            if replica.durability_dir is not None:
                service = QueryService.recover(
                    replica.durability_dir, telemetry=hub,
                    **self.service_kwargs)
            else:
                service = QueryService(shard.base, telemetry=hub,
                                       **self.service_kwargs)
            recovered_epoch = service.versioned.epoch
            replayed = 0
            for epoch, op, payload in shard.oplog:
                if epoch <= recovered_epoch:
                    continue
                self._apply_one(service, op, payload)
                if service.versioned.epoch != epoch:
                    raise RuntimeError(
                        f"{replica.name}: op-log catch-up produced "
                        f"epoch {service.versioned.epoch}, expected "
                        f"{epoch}")
                replayed += 1
            if service.versioned.epoch != shard.epoch:
                raise RuntimeError(
                    f"{replica.name}: rejoined at epoch "
                    f"{service.versioned.epoch}, shard is at "
                    f"{shard.epoch}")
            replica.service = service
            replica.breaker.record_success()
            replica.recoveries += 1
            span.set_attributes(recovered_epoch=recovered_epoch,
                                replayed=replayed)
            self._counter("repro_router_recoveries_total",
                          "replicas recovered and rejoined").inc(
                shard=str(shard_index))
            self.telemetry.metrics.gauge(
                "repro_shard_live_replicas",
                "live replicas per shard").set(
                len(shard.live_replicas()), shard=str(shard_index))
            self.telemetry.events.emit(
                "replica_recovered", shard=shard_index,
                replica=replica_index,
                recovered_epoch=recovered_epoch, replayed=replayed)
        return replica

    # -- introspection & lifecycle -----------------------------------------------

    def live_map(self) -> dict[int, list[int]]:
        """Live replica indices per shard (empty list = dark shard)."""
        return {s.index: [r.index for r in s.live_replicas()]
                for s in self.shards if s.replicas}

    def stats(self) -> dict:
        """JSON-friendly router + per-shard health snapshot."""
        return {
            "plan": self.plan.describe(),
            "requests": self._requests,
            "partial_answers": self._partial_answers,
            "shards": [
                {"index": s.index, "epoch": s.epoch,
                 "oplog": len(s.oplog),
                 "replicas": [r.to_dict() for r in s.replicas]}
                for s in self.shards],
        }

    def merged_metrics(self):
        """One registry: the router's own series plus every live
        replica's, labeled ``shard=``/``replica=``."""
        from ..obs.metrics import MetricsRegistry
        merged = MetricsRegistry()
        merged.merge_from(self.telemetry.metrics, component="router")
        for shard in self.shards:
            for replica in shard.replicas:
                if replica.live:
                    merged.merge_from(
                        replica.service.telemetry.metrics,
                        shard=str(shard.index),
                        replica=str(replica.index))
        return merged

    def shutdown(self) -> None:
        """Shut down every live replica (idempotent)."""
        for shard in self.shards:
            for replica in shard.replicas:
                if replica.live:
                    replica.service.shutdown()

    def __enter__(self) -> "ShardedService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False
