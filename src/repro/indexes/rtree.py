"""In-memory R-tree over trajectory MBBs — the CPU baseline's index.

The paper's CPU-RTree (from the authors' earlier work [11], [25]) stores
``r >= 1`` *consecutive segments of one trajectory* per leaf MBB: larger
``r`` shrinks the tree (cheaper traversal) but widens the boxes (more
candidates to refine).  ``r`` is the baseline's tuning knob, swept in the
evaluation with only the best value reported per experiment.

Two construction methods (``method=``) and two box dimensionalities
(``temporal_axis=``) are provided, because the paper specifies neither
and the choice materially shapes the baseline (DESIGN.md §6.3):

* **Guttman insertion** (default) — the classic dynamic R-tree the paper
  cites, built in :mod:`repro.indexes.rtree_insert`;
* **STR bulk loading** — a near-optimally packed tree, generalized to
  k dimensions, as a strictly stronger ablation baseline;
* boxes are **3-D spatial** (time handled in refinement only) or **4-D
  spatiotemporal** (time as an index axis).

The search is implemented as a *batched* descent: all queries enter at the
root and the per-node overlap tests are vectorized over the queries
visiting that node.  This keeps the Python overhead per node constant
while producing exactly the node-visit counts a per-query traversal would,
which is what the CPU cost model charges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.geometry import MBB, segment_mbbs
from ..core.ranges import expand_ranges
from ..core.types import SegmentArray

__all__ = ["RTree", "RTreeNode"]


@dataclass
class RTreeNode:
    """One internal or leaf-level node.

    ``child_lo``/``child_hi`` are ``(k, 4)`` arrays of child MBBs.  For an
    internal node ``children`` holds child ``RTreeNode``s; for a leaf-level
    node ``ranges`` holds per-child inclusive row ranges ``(lo, hi)`` into
    the (trajectory-grouped) segment ordering — each range covering the
    ``r`` consecutive segments the child MBB bounds.
    """

    child_lo: np.ndarray
    child_hi: np.ndarray
    children: list["RTreeNode"] = field(default_factory=list)
    ranges: np.ndarray | None = None  # (k, 2) for leaf-level nodes

    @property
    def is_leaf(self) -> bool:
        return self.ranges is not None

    @property
    def num_children(self) -> int:
        return int(self.child_lo.shape[0])


def _str_pack(lo: np.ndarray, hi: np.ndarray, fanout: int) -> np.ndarray:
    """Sort-Tile-Recursive grouping: assign each input box to a group of at
    most ``fanout`` boxes, returning the group id per box.

    Recursively tiles dimensions in order: split the boxes (sorted by
    center along the current axis) into vertical "slabs" sized so that the
    remaining dimensions can finish the packing, then recurse per slab.
    """
    n = lo.shape[0]
    ndim = lo.shape[1]
    group = np.zeros(n, dtype=np.int64)

    def recurse(idx: np.ndarray, axis: int, next_group: int) -> int:
        k = idx.shape[0]
        if k <= fanout or axis == ndim - 1:
            centers = 0.5 * (lo[idx, axis] + hi[idx, axis])
            order = idx[np.argsort(centers, kind="stable")]
            for g0 in range(0, k, fanout):
                group[order[g0:g0 + fanout]] = next_group
                next_group += 1
            return next_group
        num_groups = int(np.ceil(k / fanout))
        slabs = int(np.ceil(num_groups ** (1.0 / (ndim - axis))))
        per_slab = int(np.ceil(k / slabs))
        centers = 0.5 * (lo[idx, axis] + hi[idx, axis])
        order = idx[np.argsort(centers, kind="stable")]
        for s0 in range(0, k, per_slab):
            next_group = recurse(order[s0:s0 + per_slab], axis + 1,
                                 next_group)
        return next_group

    recurse(np.arange(n, dtype=np.int64), 0, 0)
    return group


@dataclass
class RTree:
    """An R-tree over a segment database (3-D spatial or 4-D boxes).

    ``segments`` is the database re-sorted so every trajectory's segments
    are contiguous and time-ordered (leaf MBBs cover consecutive rows).
    """

    segments: SegmentArray
    root: RTreeNode
    segments_per_mbb: int
    fanout: int
    num_nodes: int
    num_leaf_mbbs: int
    temporal_axis: bool = False

    @classmethod
    def build(cls, segments: SegmentArray, segments_per_mbb: int = 4,
              fanout: int = 16, method: str = "guttman",
              temporal_axis: bool = False) -> "RTree":
        """Build the tree over per-``r``-segment MBBs.

        ``segments_per_mbb`` is the paper's ``r``; ``fanout`` the node
        capacity ``M``.  ``method`` selects the construction:

        * ``"guttman"`` (default) — dynamic insertion with quadratic
          splits, the classic R-tree the paper's baseline cites.  Node
          overlap (and hence traversal cost) reflects a real dynamic
          R-tree's behaviour, degradation on uniform dense data included.
        * ``"str"`` — Sort-Tile-Recursive bulk loading: near-optimally
          packed, minimal overlap.  A stronger-than-the-paper baseline,
          useful for ablations.

        ``temporal_axis=False`` (default) indexes the 3 spatial
        dimensions only, with time handled purely in refinement — the
        configuration whose measured behaviour matches the paper's
        baseline (its CPU-RTree loses temporal discrimination on
        temporally co-extensive datasets).  ``temporal_axis=True`` adds
        time as a fourth index axis, a strictly stronger baseline used in
        ablations.
        """
        if segments_per_mbb <= 0:
            raise ValueError("segments_per_mbb must be positive")
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        if method not in ("guttman", "str"):
            raise ValueError(f"unknown build method {method!r}")
        if len(segments) == 0:
            raise ValueError("cannot index an empty database")

        # Group rows so each trajectory's segments are contiguous and
        # time-ordered; leaf MBBs must never span trajectories.
        order = np.lexsort((segments.ts, segments.traj_ids))
        seg = segments.take(order)
        r = segments_per_mbb

        boxes = segment_mbbs(seg, temporal=temporal_axis)
        ndim = boxes.ndim
        # Chunk rows into runs of r consecutive same-trajectory segments.
        tid = seg.traj_ids
        run_break = np.ones(len(seg), dtype=bool)
        run_break[1:] = tid[1:] != tid[:-1]
        run_start_of = np.maximum.accumulate(
            np.where(run_break, np.arange(len(seg)), 0))
        chunk_break = run_break | ((np.arange(len(seg)) - run_start_of)
                                   % r == 0)
        chunk_id = np.cumsum(chunk_break) - 1
        num_chunks = int(chunk_id[-1]) + 1

        chunk_lo = np.full((num_chunks, ndim), np.inf)
        chunk_hi = np.full((num_chunks, ndim), -np.inf)
        np.minimum.at(chunk_lo, chunk_id, boxes.lo)
        np.maximum.at(chunk_hi, chunk_id, boxes.hi)
        first = np.flatnonzero(chunk_break)
        last = np.empty_like(first)
        last[:-1] = first[1:] - 1
        last[-1] = len(seg) - 1
        ranges = np.stack([first, last], axis=1).astype(np.int64)

        if method == "guttman":
            from .rtree_insert import GuttmanBuilder
            builder = GuttmanBuilder(fanout=fanout, ndim=ndim)
            # Dynamic R-trees are sensitive to insertion order.  Snapshot
            # datasets (Merger, Random-dense) are produced timestep-major,
            # so the natural load order presents time-adjacent but
            # spatially random entries back to back — the order a system
            # ingesting simulation output would see.
            if temporal_axis:
                insert_order = np.argsort(chunk_lo[:, 3], kind="stable")
            else:
                insert_order = np.arange(num_chunks)
            for c in insert_order:
                builder.insert(chunk_lo[c], chunk_hi[c],
                               (int(ranges[c, 0]), int(ranges[c, 1])))
            return cls(segments=seg, root=builder.finalize(),
                       segments_per_mbb=r, fanout=fanout,
                       num_nodes=builder.num_nodes,
                       num_leaf_mbbs=num_chunks,
                       temporal_axis=temporal_axis)

        node_count = [0]

        def build_level(lo: np.ndarray, hi: np.ndarray,
                        payload_nodes: list[RTreeNode] | None,
                        payload_ranges: np.ndarray | None
                        ) -> tuple[np.ndarray, np.ndarray, list[RTreeNode]]:
            group = _str_pack(lo, hi, fanout)
            num_groups = int(group.max()) + 1
            nodes: list[RTreeNode] = []
            up_lo = np.empty((num_groups, ndim))
            up_hi = np.empty((num_groups, ndim))
            for g in range(num_groups):
                sel = np.flatnonzero(group == g)
                node = RTreeNode(
                    child_lo=lo[sel], child_hi=hi[sel],
                    children=([payload_nodes[s] for s in sel]
                              if payload_nodes is not None else []),
                    ranges=(payload_ranges[sel]
                            if payload_ranges is not None else None),
                )
                nodes.append(node)
                node_count[0] += 1
                up_lo[g] = lo[sel].min(axis=0)
                up_hi[g] = hi[sel].max(axis=0)
            return up_lo, up_hi, nodes

        lo, hi, nodes = build_level(chunk_lo, chunk_hi, None, ranges)
        while len(nodes) > 1:
            lo, hi, nodes = build_level(lo, hi, nodes, None)
        return cls(segments=seg, root=nodes[0], segments_per_mbb=r,
                   fanout=fanout, num_nodes=node_count[0],
                   num_leaf_mbbs=num_chunks, temporal_axis=temporal_axis)

    # -- search --------------------------------------------------------------------

    def query_candidates(
        self, queries: SegmentArray, d: float
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Index phase of the search: per-query candidate row arrays.

        The query's 4-D MBB is expanded by ``d`` on the spatial axes only,
        then pushed down the tree.  Returns ``(candidates, node_visits)``
        where ``candidates[k]`` are candidate rows for query ``k`` (all
        ``r`` segments of every overlapping leaf MBB) and
        ``node_visits[k]`` counts the nodes query ``k`` expanded — the
        traversal cost the CPU model charges.
        """
        nq = len(queries)
        qboxes = segment_mbbs(queries, temporal=self.temporal_axis)
        q_lo = qboxes.lo.copy()
        q_hi = qboxes.hi.copy()
        q_lo[:, :3] -= d
        q_hi[:, :3] += d

        candidates: list[list[np.ndarray]] = [[] for _ in range(nq)]
        node_visits = np.zeros(nq, dtype=np.int64)

        def descend(node: RTreeNode, q_idx: np.ndarray) -> None:
            node_visits[q_idx] += 1
            # (nq_batch, k) overlap tests, vectorized over both axes.
            ov = np.all(
                (q_lo[q_idx][:, None, :] <= node.child_hi[None, :, :])
                & (node.child_lo[None, :, :] <= q_hi[q_idx][:, None, :]),
                axis=2)
            if node.is_leaf:
                assert node.ranges is not None
                for col in range(node.num_children):
                    hit = q_idx[ov[:, col]]
                    if hit.size:
                        lo_r, hi_r = node.ranges[col]
                        rows = np.arange(lo_r, hi_r + 1, dtype=np.int64)
                        for q in hit:
                            candidates[q].append(rows)
            else:
                for col, child in enumerate(node.children):
                    sub = q_idx[ov[:, col]]
                    if sub.size:
                        descend(child, sub)

        if nq:
            descend(self.root, np.arange(nq, dtype=np.int64))
        merged = [np.concatenate(c) if c else np.zeros(0, dtype=np.int64)
                  for c in candidates]
        return merged, node_visits

    def query_candidates_flat(
        self, queries: SegmentArray, d: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Whole-batch variant of :meth:`query_candidates`.

        Same descent, but leaf hits are emitted as flat
        ``(query, leaf-range)`` triples and expanded into one candidate
        array in a single vectorized pass — no per-query Python lists.
        Returns ``(candidate_rows, cand_start, node_visits)`` where query
        ``k``'s candidates are
        ``candidate_rows[cand_start[k]:cand_start[k+1]]``, in exactly the
        order :meth:`query_candidates` lists them (leaf visits in DFS
        order, leaf children in slot order).
        """
        nq = len(queries)
        qboxes = segment_mbbs(queries, temporal=self.temporal_axis)
        q_lo = qboxes.lo.copy()
        q_hi = qboxes.hi.copy()
        q_lo[:, :3] -= d
        q_hi[:, :3] += d

        node_visits = np.zeros(nq, dtype=np.int64)
        hit_q: list[np.ndarray] = []
        hit_lo: list[np.ndarray] = []
        hit_len: list[np.ndarray] = []

        def descend(node: RTreeNode, q_idx: np.ndarray) -> None:
            node_visits[q_idx] += 1
            ov = np.all(
                (q_lo[q_idx][:, None, :] <= node.child_hi[None, :, :])
                & (node.child_lo[None, :, :] <= q_hi[q_idx][:, None, :]),
                axis=2)
            if node.is_leaf:
                assert node.ranges is not None
                # nonzero on the transpose walks hits child-major — the
                # per-leaf emission order of the reference descent.
                col, row = np.nonzero(ov.T)
                if col.size:
                    hit_q.append(q_idx[row])
                    hit_lo.append(node.ranges[col, 0])
                    hit_len.append(node.ranges[col, 1]
                                   - node.ranges[col, 0] + 1)
            else:
                for col, child in enumerate(node.children):
                    sub = q_idx[ov[:, col]]
                    if sub.size:
                        descend(child, sub)

        if nq:
            descend(self.root, np.arange(nq, dtype=np.int64))

        if hit_q:
            q_all = np.concatenate(hit_q)
            lo_all = np.concatenate(hit_lo)
            len_all = np.concatenate(hit_len)
            # Stable sort groups each query's leaf ranges while keeping
            # them in DFS emission order.
            order = np.argsort(q_all, kind="stable")
            q_all = q_all[order]
            lo_all = lo_all[order]
            len_all = len_all[order]
            lens = np.bincount(q_all, weights=len_all,
                               minlength=nq).astype(np.int64)
            candidate_rows = expand_ranges(lo_all, len_all)
        else:
            lens = np.zeros(nq, dtype=np.int64)
            candidate_rows = np.zeros(0, dtype=np.int64)
        cand_start = np.zeros(nq + 1, dtype=np.int64)
        np.cumsum(lens, out=cand_start[1:])
        return candidate_rows, cand_start, node_visits

    # -- reporting ------------------------------------------------------------------

    def nbytes(self) -> int:
        """Approximate in-memory index footprint (boxes + ranges)."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += node.child_lo.nbytes + node.child_hi.nbytes
            if node.ranges is not None:
                total += node.ranges.nbytes
            stack.extend(node.children)
        return total

    def depth(self) -> int:
        node, depth = self.root, 1
        while not node.is_leaf:
            node = node.children[0]
            depth += 1
        return depth
