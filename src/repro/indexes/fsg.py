"""Flatly-Structured Grid (FSG) — the GPUSpatial index (paper §IV-A).

A 3-D rectangular box covering the database's spatial bounds is split into
``nx x ny x nz`` cells.  Each entry segment's spatial MBB is *rasterized*:
the segment's row id is recorded in every cell its MBB overlaps.  The
physical layout is exactly the paper's:

* only **non-empty** cells are stored, as the array ``G`` of linear cell
  coordinates (row-major ``h = (ix * ny + iy) * nz + iz``), kept sorted so
  a cell can be located with one binary search in ``O(log |G|)``;
* cell ``C_h`` is described by an index range ``[A_min_h, A_max_h]`` into
  a flat integer *lookup array* ``A`` holding entry row ids.  An id occurs
  in ``A`` once per overlapped cell, so duplicates downstream are expected
  and filtered on the host.

Cell spatial coordinates are never stored — they are recomputed from ``h``
on demand — which is the paper's memory-footprint optimization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.geometry import segment_mbbs
from ..core.types import SegmentArray

__all__ = ["FlatGrid"]


@dataclass(frozen=True)
class FlatGrid:
    """The built FSG over a segment database.

    Attributes
    ----------
    dims:
        ``(nx, ny, nz)`` cell counts.
    origin, cell_size:
        Grid geometry; cell ``(ix, iy, iz)`` spans
        ``origin + i*cell_size`` to ``origin + (i+1)*cell_size``.
    cell_ids:
        Sorted linear coordinates of the non-empty cells (the array ``G``).
    cell_start, cell_end:
        Per non-empty cell, the half-open range ``[start, end)`` into
        ``lookup`` (the paper's inclusive ``[A_min, A_max]`` stored
        half-open for NumPy ergonomics).
    lookup:
        The lookup array ``A``: entry row indices, grouped by cell.
    """

    dims: tuple[int, int, int]
    origin: np.ndarray
    cell_size: np.ndarray
    cell_ids: np.ndarray
    cell_start: np.ndarray
    cell_end: np.ndarray
    lookup: np.ndarray

    # -- construction ------------------------------------------------------------

    @classmethod
    def build(cls, segments: SegmentArray,
              cells_per_dim: int | tuple[int, int, int]) -> "FlatGrid":
        """Rasterize every entry MBB onto the grid.

        ``cells_per_dim`` is the resolution knob the paper sweeps in §V-C
        (50 cells per dimension is its best setting for Random).
        """
        if isinstance(cells_per_dim, int):
            dims = (cells_per_dim,) * 3
        else:
            dims = tuple(int(c) for c in cells_per_dim)
        if len(dims) != 3 or any(c <= 0 for c in dims):
            raise ValueError("cells_per_dim must be positive (3 values)")
        if len(segments) == 0:
            raise ValueError("cannot index an empty database")

        mins, maxs = segments.spatial_bounds()
        extent = np.maximum(maxs - mins, 1e-300)
        cell_size = extent / np.asarray(dims, dtype=np.float64)

        boxes = segment_mbbs(segments)
        lo_cells, hi_cells = cls._cell_span(boxes.lo, boxes.hi,
                                            mins, cell_size, dims)
        spans = hi_cells - lo_cells + 1  # (n, 3)
        counts = np.prod(spans, axis=1)
        total = int(counts.sum())

        # Vectorized rasterization: emit one (cell_id, row) pair per
        # overlapped cell.  Enumerate the k-th overlapped cell of each
        # segment by decomposing k into (dx, dy, dz) offsets.
        rows = np.repeat(np.arange(len(segments), dtype=np.int64), counts)
        offsets = np.arange(total, dtype=np.int64) \
            - np.repeat(np.cumsum(counts) - counts, counts)
        sy = np.repeat(spans[:, 1], counts)
        sz = np.repeat(spans[:, 2], counts)
        dz = offsets % sz
        dy = (offsets // sz) % sy
        dx = offsets // (sz * sy)
        ix = np.repeat(lo_cells[:, 0], counts) + dx
        iy = np.repeat(lo_cells[:, 1], counts) + dy
        iz = np.repeat(lo_cells[:, 2], counts) + dz
        h = (ix * dims[1] + iy) * dims[2] + iz

        order = np.lexsort((rows, h))
        h_sorted = h[order]
        rows_sorted = rows[order]
        cell_ids, first = np.unique(h_sorted, return_index=True)
        cell_start = first.astype(np.int64)
        cell_end = np.empty_like(cell_start)
        cell_end[:-1] = cell_start[1:]
        if len(cell_end):
            cell_end[-1] = total
        return cls(dims=dims, origin=mins, cell_size=cell_size,
                   cell_ids=cell_ids, cell_start=cell_start,
                   cell_end=cell_end, lookup=rows_sorted)

    @staticmethod
    def _cell_span(lo: np.ndarray, hi: np.ndarray, origin: np.ndarray,
                   cell_size: np.ndarray, dims: tuple[int, int, int]
                   ) -> tuple[np.ndarray, np.ndarray]:
        """Integer cell ranges overlapped by boxes (clipped to the grid).

        Clipping happens in floating point *before* the integer cast:
        degenerate dimensions (zero spatial extent => near-zero cell
        size) produce +/-inf coordinates whose int64 cast would be
        undefined.
        """
        dims_arr = np.asarray(dims, dtype=np.float64)
        lo_f = np.clip(np.floor((lo - origin) / cell_size), 0.0,
                       dims_arr - 1)
        hi_f = np.clip(np.floor((hi - origin) / cell_size), 0.0,
                       dims_arr - 1)
        return lo_f.astype(np.int64), hi_f.astype(np.int64)

    # -- queries ------------------------------------------------------------------

    @property
    def num_nonempty_cells(self) -> int:
        return int(self.cell_ids.shape[0])

    def nbytes(self) -> int:
        """Device footprint of G (+ranges) and A."""
        return int(self.cell_ids.nbytes + self.cell_start.nbytes
                   + self.cell_end.nbytes + self.lookup.nbytes)

    def linearize(self, ix: np.ndarray, iy: np.ndarray,
                  iz: np.ndarray) -> np.ndarray:
        """Row-major linear coordinate ``h`` of cells ``(ix, iy, iz)``."""
        return (ix * self.dims[1] + iy) * self.dims[2] + iz

    def delinearize(self, h: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                                  np.ndarray]:
        """Recompute cell coordinates from ``h`` (cells store no coords)."""
        iz = h % self.dims[2]
        iy = (h // self.dims[2]) % self.dims[1]
        ix = h // (self.dims[2] * self.dims[1])
        return ix, iy, iz

    def cells_overlapping_box(self, lo: np.ndarray,
                              hi: np.ndarray) -> np.ndarray:
        """Linear ids of all grid cells a (single) box overlaps.

        Kernel-side step 1 of Algorithm 1: rasterize the query MBB
        (already expanded by ``d`` by the caller).  Returns cells whether
        or not they are non-empty; probing decides.
        """
        lo_c, hi_c = self._cell_span(lo[None, :], hi[None, :], self.origin,
                                     self.cell_size, self.dims)
        xr = np.arange(lo_c[0, 0], hi_c[0, 0] + 1, dtype=np.int64)
        yr = np.arange(lo_c[0, 1], hi_c[0, 1] + 1, dtype=np.int64)
        zr = np.arange(lo_c[0, 2], hi_c[0, 2] + 1, dtype=np.int64)
        ix, iy, iz = np.meshgrid(xr, yr, zr, indexing="ij")
        return self.linearize(ix.ravel(), iy.ravel(), iz.ravel())

    def probe(self, h: np.ndarray) -> tuple[np.ndarray, np.ndarray,
                                            np.ndarray]:
        """Binary-search cells ``h`` in ``G``.

        Returns ``(found_mask, start, end)`` where ``[start, end)`` indexes
        ``lookup`` for found cells (zeros otherwise).  One probe costs
        ``O(log |G|)``; the engine charges it as gather work.
        """
        pos = np.searchsorted(self.cell_ids, h)
        pos_c = np.minimum(pos, self.num_nonempty_cells - 1)
        found = (self.num_nonempty_cells > 0) & (self.cell_ids[pos_c] == h)
        start = np.where(found, self.cell_start[pos_c], 0)
        end = np.where(found, self.cell_end[pos_c], 0)
        return found, start, end

    # -- invariants (used by property tests) -----------------------------------------

    def cell_box(self, h: int) -> tuple[np.ndarray, np.ndarray]:
        """Spatial bounds of cell ``h`` (recomputed, never stored)."""
        ix, iy, iz = self.delinearize(np.asarray([h], dtype=np.int64))
        idx = np.array([ix[0], iy[0], iz[0]], dtype=np.float64)
        lo = self.origin + idx * self.cell_size
        return lo, lo + self.cell_size
