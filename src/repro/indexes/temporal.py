"""Temporal bin index — the GPUTemporal index (paper §IV-B).

The database is sorted by ascending ``t_start`` and its temporal extent
``[t_min, t_max]`` is partitioned into ``m`` logical bins of fixed width
``b = (t_max - t_min) / m``.  Entry ``l_i`` belongs to bin
``j = floor((t_start_i - t_min) / b)``.  Bins therefore map to contiguous
index ranges ``[B_first_j, B_last_j]`` of the sorted database.  A bin's
temporal extent is ``[B_start_j, B_end_j]`` with
``B_end_j = max((j+1) * b, max_{i in B_j} t_end_i)`` — segments can spill
past their bin's nominal right edge, so adjacent bins overlap temporally.

For a query ``q_k`` the candidate set is the contiguous row range

    E_k = [ min_{B in B_k} B_first,  max_{B in B_k} B_last ]

over the bins ``B_k`` whose extents overlap the query's.  Because
``B_end`` is *not* monotone in ``j``, the index precomputes a prefix
maximum of ``B_end`` so the earliest overlapping bin is found with one
binary search; the whole schedule for a sorted query set is computed in
near-linear time on the host, matching the paper's observation that
schedule computation is a negligible fraction of response time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.types import SegmentArray

__all__ = ["TemporalIndex"]


@dataclass(frozen=True)
class TemporalIndex:
    """Built temporal-bin index.

    ``segments`` is the database *re-sorted* by ``t_start``; all row
    ranges produced by this index refer to that ordering.  Empty bins are
    represented with ``B_first = n`` and ``B_last = -1`` sentinels, which
    make the prefix/suffix scans below work without special cases.
    """

    segments: SegmentArray
    num_bins: int
    bin_width: float
    t_min: float
    bin_start: np.ndarray    # (m,) nominal start times  j*b + t_min
    bin_end: np.ndarray      # (m,) extents incl. spill-over
    bin_first: np.ndarray    # (m,) first row of bin (n if empty)
    bin_last: np.ndarray     # (m,) last row of bin  (-1 if empty)
    _end_prefix_max: np.ndarray   # prefix max of bin_end
    _first_suffix_min: np.ndarray  # suffix min of bin_first
    _last_prefix_max: np.ndarray   # prefix max of bin_last

    @classmethod
    def build(cls, segments: SegmentArray, num_bins: int) -> "TemporalIndex":
        if num_bins <= 0:
            raise ValueError("num_bins must be positive")
        if len(segments) == 0:
            raise ValueError("cannot index an empty database")
        seg = segments.sorted_by_start_time()
        n = len(seg)
        t_min, t_max = seg.temporal_extent
        width = max((t_max - t_min) / num_bins, 1e-300)

        # Clip in float before the cast: extreme ratios (degenerate
        # temporal extents) must not reach an undefined int64 cast.
        bins = np.clip(np.floor((seg.ts - t_min) / width), 0,
                       num_bins - 1).astype(np.int64)

        bin_first = np.full(num_bins, n, dtype=np.int64)
        bin_last = np.full(num_bins, -1, dtype=np.int64)
        # seg is sorted by ts, hence bins is non-decreasing: each bin's rows
        # are contiguous.
        uniq, first_idx = np.unique(bins, return_index=True)
        bin_first[uniq] = first_idx
        last_idx = np.empty_like(first_idx)
        last_idx[:-1] = first_idx[1:] - 1
        if len(last_idx):
            last_idx[-1] = n - 1
        bin_last[uniq] = last_idx

        bin_start = t_min + np.arange(num_bins, dtype=np.float64) * width
        nominal_end = bin_start + width
        max_te = np.full(num_bins, -np.inf)
        np.maximum.at(max_te, bins, seg.te)
        bin_end = np.maximum(nominal_end, max_te)

        return cls(
            segments=seg,
            num_bins=num_bins,
            bin_width=width,
            t_min=t_min,
            bin_start=bin_start,
            bin_end=bin_end,
            bin_first=bin_first,
            bin_last=bin_last,
            _end_prefix_max=np.maximum.accumulate(bin_end),
            _first_suffix_min=np.minimum.accumulate(
                bin_first[::-1])[::-1].copy(),
            _last_prefix_max=np.maximum.accumulate(bin_last),
        )

    # -- schedule computation (host side) ----------------------------------------

    def bin_range(self, q_start: np.ndarray, q_end: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
        """Per-query inclusive range ``[j_lo, j_hi]`` of overlapping bins.

        ``j_lo > j_hi`` signals "no overlapping bin".  Vectorized over the
        whole (sorted) query set.
        """
        q_start = np.asarray(q_start, dtype=np.float64)
        q_end = np.asarray(q_end, dtype=np.float64)
        # Last bin whose nominal start is <= q_end … (float clip before
        # the cast, as in build)
        j_hi = np.clip(np.floor((q_end - self.t_min) / self.bin_width),
                       -1, self.num_bins - 1).astype(np.int64)
        # … and earliest bin whose (spill-aware) end reaches q_start: the
        # prefix max of bin_end is non-decreasing, so one binary search.
        j_lo = np.searchsorted(self._end_prefix_max, q_start,
                               side="left").astype(np.int64)
        return j_lo, j_hi

    def candidate_rows(self, q_start: np.ndarray, q_end: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Per-query inclusive candidate row range ``E_k`` (``lo > hi`` =>
        empty)."""
        j_lo, j_hi = self.bin_range(q_start, q_end)
        n = len(self.segments)
        empty = j_lo > j_hi
        j_lo_c = np.clip(j_lo, 0, self.num_bins - 1)
        j_hi_c = np.clip(j_hi, 0, self.num_bins - 1)
        lo = self._first_suffix_min[j_lo_c]
        hi = self._last_prefix_max[j_hi_c]
        lo = np.where(empty, n, lo)
        hi = np.where(empty, -1, hi)
        return lo, hi

    # -- reporting -----------------------------------------------------------------

    def nbytes(self) -> int:
        """Device footprint of the bin descriptors (4 values per bin)."""
        return int(self.bin_start.nbytes + self.bin_end.nbytes
                   + self.bin_first.nbytes + self.bin_last.nbytes)

    def bin_of_rows(self) -> np.ndarray:
        """Bin id of every row of the sorted database (for subbin builds)."""
        bins = np.floor((self.segments.ts - self.t_min)
                        / self.bin_width).astype(np.int64)
        return np.clip(bins, 0, self.num_bins - 1)
