"""Classic Guttman R-tree construction (dynamic insertion, quadratic split).

The paper's CPU baseline uses "an in-memory R-tree index [12]" — Guttman's
original dynamic R-tree — built by inserting the per-``r``-segment MBBs
one at a time.  Unlike a packed (STR) tree, an insertion-built R-tree has
significant *node overlap*, especially on uniformly dense data: every
query descends multiple subtrees and touches many leaf MBBs whose dead
space intersects the expanded query box.  That degradation is a real part
of the baseline's measured behaviour (it is why the paper's CPU loses on
Random-dense for all but the smallest d), so we reproduce the construction
faithfully:

* **ChooseLeaf** descends into the child needing the least area
  enlargement (ties by smallest area);
* node overflow triggers Guttman's **quadratic split**: pick the two
  entries wasting the most area as seeds, then assign the rest by
  maximum preference (area-enlargement difference), honouring the
  minimum-fill invariant ``m = M // 2``;
* splits propagate upward; a root split grows the tree.

The produced structure is converted to the same immutable
:class:`~repro.indexes.rtree.RTreeNode` form the batched search consumes,
so both construction methods share the query path and the node-visit
accounting.
"""

from __future__ import annotations

import numpy as np

from .rtree import RTreeNode

__all__ = ["GuttmanBuilder"]


class _MutableNode:
    """Growable node used during insertion; frozen afterwards."""

    __slots__ = ("lo", "hi", "count", "children", "ranges", "is_leaf")

    def __init__(self, capacity: int, is_leaf: bool, ndim: int = 4) -> None:
        self.lo = np.empty((capacity + 1, ndim))
        self.hi = np.empty((capacity + 1, ndim))
        self.count = 0
        self.is_leaf = is_leaf
        self.children: list["_MutableNode"] = []
        self.ranges: list[tuple[int, int]] = []

    def add(self, lo: np.ndarray, hi: np.ndarray,
            child: "_MutableNode | None" = None,
            rng: tuple[int, int] | None = None) -> None:
        self.lo[self.count] = lo
        self.hi[self.count] = hi
        self.count += 1
        if child is not None:
            self.children.append(child)
        if rng is not None:
            self.ranges.append(rng)

    def mbb(self) -> tuple[np.ndarray, np.ndarray]:
        return (self.lo[:self.count].min(axis=0),
                self.hi[:self.count].max(axis=0))


class GuttmanBuilder:
    """Builds an R-tree by repeated insertion with quadratic splits.

    ``fanout`` is Guttman's ``M`` (max entries/node); minimum fill is
    ``M // 2``.  Entries are leaf-level ``(mbb, row-range)`` pairs — the
    same per-``r``-segment chunks the STR builder uses.
    """

    def __init__(self, fanout: int = 16, ndim: int = 4) -> None:
        if fanout < 4:
            raise ValueError("fanout must be at least 4 for quadratic "
                             "split's minimum-fill invariant")
        self.fanout = fanout
        self.ndim = ndim
        self.min_fill = fanout // 2
        self.root = _MutableNode(fanout, is_leaf=True, ndim=ndim)
        self.num_nodes = 1

    # -- public API -----------------------------------------------------------

    def insert(self, lo: np.ndarray, hi: np.ndarray,
               row_range: tuple[int, int]) -> None:
        split = self._insert_rec(self.root, lo, hi, row_range)
        if split is not None:
            new_root = _MutableNode(self.fanout, is_leaf=False,
                                    ndim=self.ndim)
            for node in (self.root, split):
                nlo, nhi = node.mbb()
                new_root.add(nlo, nhi, child=node)
            self.root = new_root
            self.num_nodes += 1

    def finalize(self) -> RTreeNode:
        """Freeze the mutable tree into the immutable search structure."""
        return self._freeze(self.root)

    # -- insertion ---------------------------------------------------------------

    def _insert_rec(self, node: _MutableNode, lo: np.ndarray,
                    hi: np.ndarray, row_range: tuple[int, int]
                    ) -> _MutableNode | None:
        """Insert into the subtree; returns a sibling if ``node`` split."""
        if node.is_leaf:
            node.add(lo, hi, rng=row_range)
            if node.count > self.fanout:
                return self._split(node)
            return None

        child_idx = self._choose_subtree(node, lo, hi)
        child = node.children[child_idx]
        split = self._insert_rec(child, lo, hi, row_range)
        # Tighten the child's recorded MBB.
        clo, chi = child.mbb()
        node.lo[child_idx] = clo
        node.hi[child_idx] = chi
        if split is not None:
            slo, shi = split.mbb()
            node.add(slo, shi, child=split)
            if node.count > self.fanout:
                return self._split(node)
        return None

    def _choose_subtree(self, node: _MutableNode, lo: np.ndarray,
                        hi: np.ndarray) -> int:
        """Guttman's ChooseLeaf criterion, vectorized over the children."""
        k = node.count
        clo, chi = node.lo[:k], node.hi[:k]
        area = np.prod(chi - clo, axis=1)
        new_lo = np.minimum(clo, lo)
        new_hi = np.maximum(chi, hi)
        enlarged = np.prod(new_hi - new_lo, axis=1) - area
        best = np.flatnonzero(enlarged == enlarged.min())
        if best.shape[0] > 1:
            return int(best[np.argmin(area[best])])
        return int(best[0])

    # -- quadratic split -----------------------------------------------------------

    def _split(self, node: _MutableNode) -> _MutableNode:
        """Quadratic split of an overflowing node (count == fanout + 1).

        Mutates ``node`` into group 1 and returns group 2.
        """
        k = node.count
        lo, hi = node.lo[:k].copy(), node.hi[:k].copy()
        children = list(node.children)
        ranges = list(node.ranges)

        # PickSeeds: the pair wasting the most area.
        pair_lo = np.minimum(lo[:, None, :], lo[None, :, :])
        pair_hi = np.maximum(hi[:, None, :], hi[None, :, :])
        waste = (np.prod(pair_hi - pair_lo, axis=2)
                 - np.prod(hi - lo, axis=1)[:, None]
                 - np.prod(hi - lo, axis=1)[None, :])
        np.fill_diagonal(waste, -np.inf)
        s1, s2 = np.unravel_index(np.argmax(waste), waste.shape)

        group = np.full(k, -1, dtype=np.int64)
        group[s1], group[s2] = 0, 1
        g_lo = [lo[s1].copy(), lo[s2].copy()]
        g_hi = [hi[s1].copy(), hi[s2].copy()]
        g_count = [1, 1]
        remaining = [i for i in range(k) if i not in (s1, s2)]

        while remaining:
            # Minimum-fill guarantee: if one group must absorb the rest.
            need = self.min_fill
            for g in (0, 1):
                if g_count[g] + len(remaining) == need:
                    for i in remaining:
                        group[i] = g
                        g_lo[g] = np.minimum(g_lo[g], lo[i])
                        g_hi[g] = np.maximum(g_hi[g], hi[i])
                        g_count[g] += 1
                    remaining = []
                    break
            if not remaining:
                break
            # PickNext: entry with the strongest group preference.
            idx = np.array(remaining)
            d_g = []
            for g in (0, 1):
                nlo = np.minimum(g_lo[g], lo[idx])
                nhi = np.maximum(g_hi[g], hi[idx])
                d_g.append(np.prod(nhi - nlo, axis=1)
                           - np.prod(g_hi[g] - g_lo[g]))
            pref = np.abs(d_g[0] - d_g[1])
            pick_pos = int(np.argmax(pref))
            i = remaining.pop(pick_pos)
            g = 0 if d_g[0][pick_pos] < d_g[1][pick_pos] else \
                1 if d_g[1][pick_pos] < d_g[0][pick_pos] else \
                (0 if g_count[0] <= g_count[1] else 1)
            group[i] = g
            g_lo[g] = np.minimum(g_lo[g], lo[i])
            g_hi[g] = np.maximum(g_hi[g], hi[i])
            g_count[g] += 1

        # Rebuild node (group 0) and the new sibling (group 1).
        sibling = _MutableNode(self.fanout, is_leaf=node.is_leaf,
                               ndim=self.ndim)
        node.count = 0
        node.children = []
        node.ranges = []
        for i in range(k):
            target = node if group[i] == 0 else sibling
            target.add(lo[i], hi[i],
                       child=children[i] if children else None,
                       rng=ranges[i] if ranges else None)
        self.num_nodes += 1
        return sibling

    # -- freezing ------------------------------------------------------------------

    def _freeze(self, node: _MutableNode) -> RTreeNode:
        k = node.count
        if node.is_leaf:
            return RTreeNode(
                child_lo=node.lo[:k].copy(), child_hi=node.hi[:k].copy(),
                ranges=np.array(node.ranges, dtype=np.int64).reshape(k, 2))
        return RTreeNode(
            child_lo=node.lo[:k].copy(), child_hi=node.hi[:k].copy(),
            children=[self._freeze(c) for c in node.children])
