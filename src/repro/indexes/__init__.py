"""Trajectory indexes: the paper's three GPU schemes plus the CPU R-tree.

* :class:`FlatGrid` — flatly-structured spatial grid (GPUSpatial, §IV-A)
* :class:`TemporalIndex` — temporal bins (GPUTemporal, §IV-B)
* :class:`SpatioTemporalIndex` — bins + spatial subbins (§IV-C)
* :class:`RTree` — 4-D packed R-tree, STR bulk-loaded (CPU baseline, §V-B)
"""

from .fsg import FlatGrid
from .rtree import RTree, RTreeNode
from .rtree_insert import GuttmanBuilder
from .spatiotemporal import Schedule, SpatioTemporalIndex
from .stats import (FsgStats, RTreeStats, SpatioTemporalStats,
                    TemporalStats, describe)
from .temporal import TemporalIndex

__all__ = ["FlatGrid", "FsgStats", "GuttmanBuilder", "RTree",
           "RTreeNode", "RTreeStats", "Schedule", "SpatioTemporalIndex",
           "SpatioTemporalStats", "TemporalIndex", "TemporalStats",
           "describe"]
