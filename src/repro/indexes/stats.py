"""Index introspection: occupancy and selectivity statistics.

Tuning the paper's indexes is all about selectivity (how few candidates
the index hands to refinement) against overhead (probes, indirections,
memory).  These reports quantify both for a built index, powering the
``tuning_parameters`` example and the ablation write-ups, and giving a
downstream user a principled way to choose ``cells_per_dim``,
``num_bins`` and ``num_subbins`` for a new dataset before running any
search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.types import SegmentArray
from .fsg import FlatGrid
from .rtree import RTree, RTreeNode
from .spatiotemporal import SpatioTemporalIndex
from .temporal import TemporalIndex

__all__ = ["FsgStats", "TemporalStats", "SpatioTemporalStats",
           "RTreeStats", "describe"]


@dataclass(frozen=True)
class FsgStats:
    """Occupancy statistics of a flat grid."""

    total_cells: int
    nonempty_cells: int
    lookup_entries: int
    duplication_factor: float   # |A| / |D|: ids stored per segment
    mean_ids_per_nonempty_cell: float
    max_ids_per_cell: int
    index_bytes: int

    @classmethod
    def of(cls, grid: FlatGrid, num_segments: int) -> "FsgStats":
        sizes = grid.cell_end - grid.cell_start
        return cls(
            total_cells=int(np.prod(grid.dims)),
            nonempty_cells=grid.num_nonempty_cells,
            lookup_entries=int(grid.lookup.shape[0]),
            duplication_factor=float(grid.lookup.shape[0]
                                     / max(num_segments, 1)),
            mean_ids_per_nonempty_cell=float(sizes.mean()),
            max_ids_per_cell=int(sizes.max()),
            index_bytes=grid.nbytes(),
        )

    @property
    def occupancy(self) -> float:
        return self.nonempty_cells / self.total_cells


@dataclass(frozen=True)
class TemporalStats:
    """Bin statistics of a temporal index."""

    num_bins: int
    empty_bins: int
    mean_bin_size: float
    max_bin_size: int
    #: mean spill past the nominal right edge, in bin widths — the
    #: quantity that widens E_k beyond the ideal.
    mean_spill_bins: float
    #: expected candidate fraction for a point query:
    #: mean (bin extent / total extent) weighted by bin size.
    expected_selectivity: float
    index_bytes: int

    @classmethod
    def of(cls, index: TemporalIndex) -> "TemporalStats":
        sizes = np.where(index.bin_last >= 0,
                         index.bin_last - index.bin_first + 1, 0)
        nominal_end = index.bin_start + index.bin_width
        spill = (index.bin_end - nominal_end) / index.bin_width
        n = len(index.segments)
        t_lo, t_hi = index.segments.temporal_extent
        total = max(t_hi - t_lo, 1e-300)
        # A point query at uniform random time hits bin j with
        # probability (extent_j / total); it then scans size_j rows.
        extents = index.bin_end - index.bin_start
        expected = float(np.sum(extents / total * sizes) / max(n, 1))
        return cls(
            num_bins=index.num_bins,
            empty_bins=int(np.count_nonzero(index.bin_last < 0)),
            mean_bin_size=float(sizes.mean()),
            max_bin_size=int(sizes.max()),
            mean_spill_bins=float(spill.mean()),
            expected_selectivity=expected,
            index_bytes=index.nbytes(),
        )


@dataclass(frozen=True)
class SpatioTemporalStats:
    """Subbin statistics of a spatiotemporal index."""

    num_bins: int
    num_subbins: int
    #: per-dimension id duplication: |X|/|D|, |Y|/|D|, |Z|/|D|.
    duplication_per_dim: tuple[float, float, float]
    #: fraction of (subbin, bin) groups that are empty, per dimension.
    empty_group_fraction: tuple[float, float, float]
    #: expected spatial selectivity of the best single dimension for a
    #: point query (~1/v for uniform data).
    expected_best_dim_selectivity: float
    extra_bytes_over_temporal: int

    @classmethod
    def of(cls, index: SpatioTemporalIndex) -> "SpatioTemporalStats":
        n = len(index.segments)
        m, v = index.temporal.num_bins, index.num_subbins
        dup = tuple(float(a.shape[0] / max(n, 1))
                    for a in index.dim_arrays)
        empty = tuple(
            float(np.count_nonzero(np.diff(offs) == 0) / (m * v))
            for offs in index.dim_offsets)
        # Expected candidates via the fullest chunk of each dimension,
        # relative to the temporal index's candidates.
        best = 1.0
        for dim in range(3):
            chunk_tot = np.add.reduceat(
                np.diff(index.dim_offsets[dim]),
                np.arange(0, m * v, m))
            best = min(best, float(chunk_tot.max())
                       / max(index.dim_arrays[dim].shape[0], 1))
        return cls(
            num_bins=m,
            num_subbins=v,
            duplication_per_dim=dup,
            empty_group_fraction=empty,
            expected_best_dim_selectivity=best,
            extra_bytes_over_temporal=index.nbytes()
            - index.temporal.nbytes(),
        )


@dataclass(frozen=True)
class RTreeStats:
    """Structural statistics of an R-tree."""

    num_nodes: int
    num_leaf_mbbs: int
    depth: int
    mean_fanout: float
    #: total overlap among sibling boxes at the root's children —
    #: insertion-built trees score much worse than packed ones.
    sibling_overlap_volume: float
    index_bytes: int

    @classmethod
    def of(cls, tree: RTree) -> "RTreeStats":
        counts = []

        def walk(node: RTreeNode):
            counts.append(node.num_children)
            for c in node.children:
                walk(c)

        walk(tree.root)
        lo = tree.root.child_lo
        hi = tree.root.child_hi
        overlap = 0.0
        for i in range(lo.shape[0]):
            for j in range(i + 1, lo.shape[0]):
                inter = np.minimum(hi[i], hi[j]) - np.maximum(lo[i],
                                                              lo[j])
                if np.all(inter > 0):
                    overlap += float(np.prod(inter))
        return cls(
            num_nodes=tree.num_nodes,
            num_leaf_mbbs=tree.num_leaf_mbbs,
            depth=tree.depth(),
            mean_fanout=float(np.mean(counts)),
            sibling_overlap_volume=overlap,
            index_bytes=tree.nbytes(),
        )


def describe(index, segments: SegmentArray | None = None):
    """Statistics object for any of the four index types."""
    if isinstance(index, FlatGrid):
        if segments is None:
            raise ValueError("FlatGrid stats need the indexed segments")
        return FsgStats.of(index, len(segments))
    if isinstance(index, SpatioTemporalIndex):
        return SpatioTemporalStats.of(index)
    if isinstance(index, TemporalIndex):
        return TemporalStats.of(index)
    if isinstance(index, RTree):
        return RTreeStats.of(index)
    raise TypeError(f"no statistics for {type(index).__name__}")
