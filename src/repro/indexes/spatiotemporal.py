"""Temporal bins + spatial subbins — the GPUSpatioTemporal index (§IV-C).

The index starts from :class:`~repro.indexes.temporal.TemporalIndex` (the
same ``m`` temporal bins) and subdivides the database's spatial bounds into
``v`` *subbins per dimension*, subject to the paper's constraint that a
subbin must be at least as large as the largest segment extent in that
dimension (so a segment overlaps at most two adjacent subbins and id
duplication stays bounded).

Physical layout (paper Fig. 3): three integer arrays ``X``, ``Y``, ``Z``,
one per dimension.  Array ``X`` stores the row ids of the entries
overlapping each subbin *in the x dimension*, grouped by
``(subbin j, temporal bin i)`` in lexicographic order — i.e. chunk ``j``
holds the ids of subbin ``j`` of temporal bin 0, then of temporal bin 1,
and so on.  Consequently, a query that (a) overlaps a contiguous range of
temporal bins ``[i0, i1]`` and (b) overlaps a *single* subbin index ``j``
in some dimension maps to **one contiguous range** of that dimension's
array — encodable in 2 integers, the property the whole scheme is built
around.

The host-side schedule picks, per query, the dimension with the fewest
candidates among the dimensions where (b) holds; when no dimension
qualifies the query *defaults* to the plain temporal scheme (arrayXYZ =
-1), trading spatial selectivity for correctness exactly as the paper
does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.types import SegmentArray
from .temporal import TemporalIndex

__all__ = ["SpatioTemporalIndex", "Schedule"]


@dataclass(frozen=True)
class Schedule:
    """Per-query search specification (4 integers each, §IV-C.2).

    ``array_sel[k]`` selects the lookup array (0 = X, 1 = Y, 2 = Z, -1 =
    default to the temporal scheme); ``ent_min``/``ent_max`` give the
    inclusive range — into the selected array for subbin queries, into the
    sorted database for defaulted queries.  ``q_rows[k]`` is the query row
    the entry refers to (schedules are sorted by ``array_sel`` to reduce
    thread divergence, so the mapping is explicit).
    """

    array_sel: np.ndarray
    ent_min: np.ndarray
    ent_max: np.ndarray
    q_rows: np.ndarray

    def __len__(self) -> int:
        return int(self.array_sel.shape[0])

    @property
    def num_defaulted(self) -> int:
        """Queries that fell back to the temporal scheme."""
        return int(np.count_nonzero(self.array_sel == -1))

    @property
    def nbytes(self) -> int:
        """Host->device traffic for shipping the schedule (4 int32 each)."""
        return 16 * len(self)


@dataclass(frozen=True)
class SpatioTemporalIndex:
    """Built spatiotemporal index.

    ``dim_arrays[d]`` is the paper's ``X``/``Y``/``Z`` array for dimension
    ``d``; ``dim_offsets[d]`` has length ``v * m + 1`` with the group for
    ``(subbin j, temporal bin i)`` occupying
    ``dim_arrays[d][dim_offsets[d][j*m+i] : dim_offsets[d][j*m+i+1]]``.
    """

    temporal: TemporalIndex
    num_subbins: int
    space_min: np.ndarray    # (3,) spatial lower bounds of D
    subbin_width: np.ndarray  # (3,) per-dimension subbin widths
    dim_arrays: tuple[np.ndarray, np.ndarray, np.ndarray]
    dim_offsets: tuple[np.ndarray, np.ndarray, np.ndarray]

    @property
    def segments(self) -> SegmentArray:
        return self.temporal.segments

    @classmethod
    def max_admissible_subbins(cls, segments: SegmentArray) -> int:
        """Largest ``v`` satisfying the subbin-size constraint (§IV-C.1):
        ``v <= (x_max - x_min) / max_i |x_start - x_end|`` in every
        dimension."""
        mins, maxs = segments.spatial_bounds()
        extent = maxs - mins
        seg_extent = segments.max_spatial_extent()
        vmax = np.inf
        for d in range(3):
            if seg_extent[d] > 0:
                vmax = min(vmax, extent[d] / seg_extent[d])
        return max(1, int(np.floor(vmax)) if np.isfinite(vmax) else 2 ** 30)

    @classmethod
    def build(cls, segments: SegmentArray, num_bins: int, num_subbins: int,
              *, strict: bool = True) -> "SpatioTemporalIndex":
        if num_subbins <= 0:
            raise ValueError("num_subbins must be positive")
        if strict and num_subbins > cls.max_admissible_subbins(segments):
            raise ValueError(
                f"num_subbins={num_subbins} violates the subbin-size "
                f"constraint (max admissible: "
                f"{cls.max_admissible_subbins(segments)}); pass "
                f"strict=False to experiment anyway")
        temporal = TemporalIndex.build(segments, num_bins)
        seg = temporal.segments
        m, v = num_bins, num_subbins

        mins, maxs = seg.spatial_bounds()
        width = np.maximum((maxs - mins) / v, 1e-300)
        row_bins = temporal.bin_of_rows()

        starts, ends = seg.starts, seg.ends
        lo3 = np.minimum(starts, ends)
        hi3 = np.maximum(starts, ends)

        dim_arrays = []
        dim_offsets = []
        for d in range(3):
            s_lo = np.clip(np.floor((lo3[:, d] - mins[d]) / width[d]),
                           0, v - 1).astype(np.int64)
            s_hi = np.clip(np.floor((hi3[:, d] - mins[d]) / width[d]),
                           0, v - 1).astype(np.int64)
            spans = s_hi - s_lo + 1
            total = int(spans.sum())
            rows = np.repeat(np.arange(len(seg), dtype=np.int64), spans)
            offs = np.arange(total, dtype=np.int64) \
                - np.repeat(np.cumsum(spans) - spans, spans)
            j = np.repeat(s_lo, spans) + offs
            i = row_bins[rows]
            key = j * m + i
            order = np.lexsort((rows, key))
            arr = rows[order]
            counts = np.bincount(key, minlength=v * m)
            offsets = np.zeros(v * m + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            dim_arrays.append(arr)
            dim_offsets.append(offsets)

        return cls(temporal=temporal, num_subbins=v, space_min=mins,
                   subbin_width=width,
                   dim_arrays=tuple(dim_arrays),
                   dim_offsets=tuple(dim_offsets))

    # -- schedule computation (host side, §IV-C.2) -------------------------------

    def make_schedule(self, queries: SegmentArray, d: float) -> Schedule:
        """Compute the per-query schedule ``S`` on the host.

        ``queries`` must already be sorted by ``t_start`` (the engine's
        responsibility, as in GPUTemporal).  The query's spatial MBB is
        expanded by ``d`` before subbin overlap is computed — required for
        completeness of a distance-threshold search.
        """
        nq = len(queries)
        m, v = self.temporal.num_bins, self.num_subbins
        j_lo, j_hi = self.temporal.bin_range(queries.ts, queries.te)
        row_lo, row_hi = self.temporal.candidate_rows(queries.ts, queries.te)
        no_bins = j_lo > j_hi
        j_lo_c = np.clip(j_lo, 0, m - 1)
        j_hi_c = np.clip(j_hi, 0, m - 1)

        q_lo = np.minimum(queries.starts, queries.ends) - d
        q_hi = np.maximum(queries.starts, queries.ends) + d

        array_sel = np.full(nq, -1, dtype=np.int64)
        ent_min = np.zeros(nq, dtype=np.int64)
        ent_max = np.full(nq, -1, dtype=np.int64)
        best_count = np.full(nq, np.iinfo(np.int64).max, dtype=np.int64)
        spatially_empty = np.zeros(nq, dtype=bool)

        for dim in range(3):
            dmin = self.space_min[dim]
            w = self.subbin_width[dim]
            dmax = dmin + w * v
            outside = (q_hi[:, dim] < dmin) | (q_lo[:, dim] > dmax)
            spatially_empty |= outside
            s_lo = np.clip(np.floor((q_lo[:, dim] - dmin) / w),
                           0, v - 1).astype(np.int64)
            s_hi = np.clip(np.floor((q_hi[:, dim] - dmin) / w),
                           0, v - 1).astype(np.int64)
            eligible = (s_lo == s_hi) & ~outside & ~no_bins
            offs = self.dim_offsets[dim]
            start = offs[s_lo * m + j_lo_c]
            end = offs[s_lo * m + j_hi_c + 1]
            count = end - start
            better = eligible & (count < best_count)
            array_sel[better] = dim
            ent_min[better] = start[better]
            ent_max[better] = end[better] - 1
            best_count[better] = count[better]

        # Defaulted queries fall back to the temporal candidate row range.
        defaulted = (array_sel == -1) & ~no_bins & ~spatially_empty
        ent_min[defaulted] = row_lo[defaulted]
        ent_max[defaulted] = row_hi[defaulted]

        # Queries with no temporal or spatial overlap at all: empty range,
        # arbitrarily tagged dimension 0 so they don't count as defaults.
        dead = no_bins | spatially_empty
        array_sel[dead] = 0
        ent_min[dead] = 0
        ent_max[dead] = -1

        # Sort by lookup-array selector to reduce thread divergence (§IV-C.2).
        order = np.argsort(array_sel, kind="stable")
        return Schedule(array_sel=array_sel[order], ent_min=ent_min[order],
                        ent_max=ent_max[order],
                        q_rows=np.arange(nq, dtype=np.int64)[order])

    # -- reporting ----------------------------------------------------------------

    def nbytes(self) -> int:
        """Extra device memory over GPUTemporal: the X/Y/Z id arrays
        (>= 3|D| x 4 bytes, §IV-C.1) plus their offset tables."""
        return int(sum(a.nbytes for a in self.dim_arrays)
                   + sum(o.nbytes for o in self.dim_offsets)
                   + self.temporal.nbytes())

    def subbin_entries(self, dim: int, j: int, i: int) -> np.ndarray:
        """Row ids of entries in subbin ``j`` of temporal bin ``i`` for
        ``dim`` (testing/introspection helper)."""
        m = self.temporal.num_bins
        offs = self.dim_offsets[dim]
        return self.dim_arrays[dim][offs[j * m + i]:offs[j * m + i + 1]]
