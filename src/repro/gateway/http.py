"""A dependency-free asyncio HTTP/1.1 front end over the gateway.

Hand-rolled on ``asyncio.start_server`` (the container bakes in no
HTTP framework, and the protocol surface is tiny):

====== ============== ================================================
method path           body / behavior
====== ============== ================================================
GET    /metrics       Prometheus text exposition (gateway + backend)
GET    /stats         JSON health snapshot
POST   /v1/search     ``SearchRequest.to_dict()`` JSON; headers
                      ``X-Api-Key``, optional ``X-Priority``
POST   /v1/ingest     ``{"segments": SegmentArray.to_dict()}``;
                      optional ``Idempotency-Key`` header
POST   /v1/delete     ``{"traj_id": int}``; optional
                      ``Idempotency-Key`` header
====== ============== ================================================

Status mapping keeps refusals machine-readable on the wire: 401
unauthenticated, 429 rate/quota (with ``Retry-After``), 503
overloaded / writes-disabled (with ``Retry-After``), 504 deadline
exceeded, 400 invalid, 206 partial.  The JSON body is always the full
:meth:`~repro.gateway.admission.GatewayResponse.to_dict`, so a client
never has to parse prose to learn why it was refused.
"""

from __future__ import annotations

import asyncio
import json

from ..core.types import SegmentArray
from ..service import SearchRequest
from .admission import GatewayResponse
from .app import Gateway

__all__ = ["GatewayHTTPServer", "STATUS_CODES"]

#: gateway status -> HTTP status code.
STATUS_CODES = {
    "ok": 200,
    "partial": 206,
    "invalid": 400,
    "unauthenticated": 401,
    "rate_limited": 429,
    "quota_exceeded": 429,
    "overloaded": 503,
    "writes_disabled": 503,
    "deadline_exceeded": 504,
}

_REASONS = {200: "OK", 206: "Partial Content", 400: "Bad Request",
            401: "Unauthorized", 404: "Not Found",
            405: "Method Not Allowed", 429: "Too Many Requests",
            503: "Service Unavailable", 504: "Gateway Timeout"}

#: request bodies above this are refused outright (slow-loris cap).
MAX_BODY_BYTES = 8 * 1024 * 1024


class GatewayHTTPServer:
    """Serve one :class:`~repro.gateway.Gateway` over HTTP/1.1."""

    def __init__(self, gateway: Gateway, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.gateway = gateway
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "GatewayHTTPServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.stop()
        return False

    # -- connection handling ------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                status, payload, extra = await self._route(
                    method, path, headers, body)
                await self._respond(writer, status, payload, extra)
                if headers.get("connection", "").lower() == "close":
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - teardown race
                pass

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        try:
            request_line = await reader.readline()
        except (ConnectionError, ValueError):
            return None
        if not request_line.strip():
            return None
        try:
            method, path, _version = \
                request_line.decode("latin-1").split(None, 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            return method, path, headers, None
        body = await reader.readexactly(length) if length else b""
        return method, path, headers, body

    async def _route(self, method: str, path: str,
                     headers: dict[str, str], body: bytes | None):
        if body is None:
            return 400, {"error": "request body too large"}, {}
        if method == "GET" and path == "/metrics":
            return 200, self.gateway.metrics_text(), {
                "content-type": "text/plain; version=0.0.4"}
        if method == "GET" and path == "/stats":
            return 200, self.gateway.stats(), {}
        if method != "POST":
            return ((405, {"error": f"{method} not allowed"}, {})
                    if path in ("/v1/search", "/v1/ingest",
                                "/v1/delete")
                    else (404, {"error": f"no route for {path}"}, {}))
        api_key = headers.get("x-api-key", "")
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"bad JSON body: {exc}"}, {}
        try:
            if path == "/v1/search":
                response = await self._search(api_key, headers,
                                              payload)
            elif path == "/v1/ingest":
                response = await self.gateway.ingest(
                    api_key,
                    SegmentArray.from_dict(payload["segments"]),
                    idempotency_key=headers.get("idempotency-key"),
                    request_id=str(payload.get("request_id", "")))
            elif path == "/v1/delete":
                response = await self.gateway.delete(
                    api_key, int(payload["traj_id"]),
                    idempotency_key=headers.get("idempotency-key"),
                    request_id=str(payload.get("request_id", "")))
            else:
                return 404, {"error": f"no route for {path}"}, {}
        except (KeyError, TypeError, ValueError) as exc:
            return 400, {"error": f"bad request payload: "
                                  f"{type(exc).__name__}: {exc}"}, {}
        return self._encode(response)

    async def _search(self, api_key: str, headers: dict[str, str],
                      payload: dict) -> GatewayResponse:
        request = SearchRequest.from_dict(payload)
        return await self.gateway.search(
            api_key, request, priority=headers.get("x-priority"))

    @staticmethod
    def _encode(response: GatewayResponse):
        status = STATUS_CODES.get(response.status, 500)
        extra = {}
        if response.retry_after_s is not None:
            # Ceil to a whole second, the header's resolution; never 0
            # so a naive client cannot hot-loop.
            extra["retry-after"] = str(
                max(1, int(-(-response.retry_after_s // 1))))
        return status, response.to_dict(), extra

    @staticmethod
    async def _respond(writer: asyncio.StreamWriter, status: int,
                       payload, extra: dict[str, str]) -> None:
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = extra.pop("content-type", "text/plain")
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = extra.pop("content-type",
                                     "application/json")
        reason = _REASONS.get(status, "Unknown")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(body)}"]
        head += [f"{k.title()}: {v}" for k, v in extra.items()]
        writer.write(("\r\n".join(head) + "\r\n\r\n")
                     .encode("latin-1") + body)
        await writer.drain()
