"""The admission-controlled async front door.

:class:`Gateway` sits in front of a backend — a single
:class:`~repro.service.QueryService` or a sharded
:class:`~repro.sharding.ShardedService` (anything with ``submit`` /
``ingest`` / ``delete_trajectory``) — and makes overload a first-class,
*typed* regime instead of an accident:

* every call authenticates by API key and is charged against the
  tenant's token bucket and daily quota
  (:class:`~repro.gateway.tenants.TenantRegistry`);
* searches land in **bounded per-priority queues** drained
  interactive-first by an asyncio worker; a full queue or an arrival
  whose estimated wait already exceeds its deadline is rejected **on
  arrival** with a typed refusal carrying a ``retry_after_s`` hint —
  the gateway never silently drops a request and never dispatches one
  whose budget is provably gone;
* a queued request whose deadline expires before dispatch is answered
  ``deadline_exceeded`` at dequeue time — expiry in the queue is a
  response, not a disappearance;
* sustained pressure walks the
  :class:`~repro.gateway.brownout.BrownoutLadder`: shed the batch
  tier, then rewrite ``auto`` to ``cpu_scan`` (slower, never wrong),
  then refuse writes while reads keep serving;
* mutations take an ``idempotency_key`` that flows into the backend's
  WAL-carried dedup table, so client retries are exactly-once even
  across a crash/recover.

The gateway runs on an injectable ``clock`` so the overload campaign
can drive admission, rate limits, and brownout on simulated time —
same seed, same storm, same report.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field, replace

from ..ingest import IngestError, IngestReceipt
from ..obs import Telemetry
from ..obs.metrics import MetricsRegistry
from ..service import SearchRequest, SearchResponse
from .admission import PRIORITIES, GatewayResponse
from .brownout import BrownoutLadder
from .tenants import TenantConfig, TenantRegistry

__all__ = ["Gateway"]


@dataclass
class _Job:
    """One admitted search waiting for the drain worker."""

    request: SearchRequest
    tenant: str
    priority: str
    future: asyncio.Future
    admitted_at: float
    #: absolute gateway-clock instant the budget expires (None = no
    #: deadline).
    deadline_at: float | None = None
    #: brownout level at admission (dispatch re-reads the ladder).
    level_at_admit: int = 0
    meta: dict = field(default_factory=dict)


class Gateway:
    """Admission-controlled front door over one query backend.

    Parameters
    ----------
    backend:
        :class:`~repro.service.QueryService`,
        :class:`~repro.sharding.ShardedService`, or any object with
        the same ``submit``/``ingest``/``delete_trajectory`` surface.
    tenants:
        A :class:`~repro.gateway.tenants.TenantRegistry` or an
        iterable of :class:`~repro.gateway.tenants.TenantConfig`.
    queue_depth:
        Bound of *each* priority queue; arrivals beyond it are typed
        ``overloaded`` rejections, not waits.
    est_service_s:
        Initial estimate of one request's service time, used for
        arrival-time wait estimation and retry hints; refined online
        as an EWMA of observed modeled latencies.
    clock:
        Monotonic-seconds callable; the campaign passes a simulated
        clock shared with the tenant registry.
    telemetry:
        The gateway's own hub (``repro_gateway_*`` series);
        :meth:`metrics_text` merges it with the backend's.
    brownout:
        A preconfigured ladder (None = defaults); it is re-homed onto
        this gateway's telemetry hub.
    """

    def __init__(self, backend, tenants, *,
                 queue_depth: int = 16,
                 est_service_s: float = 1e-3,
                 clock=time.monotonic,
                 telemetry: Telemetry | None = None,
                 brownout: BrownoutLadder | None = None) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if est_service_s <= 0:
            raise ValueError("est_service_s must be positive")
        self.backend = backend
        self.tenants = (tenants if isinstance(tenants, TenantRegistry)
                        else TenantRegistry(tenants, clock=clock))
        self.queue_depth = int(queue_depth)
        self.est_service_s = float(est_service_s)
        self.clock = clock
        self.telemetry = telemetry or Telemetry()
        self.brownout = brownout or BrownoutLadder()
        self.brownout.telemetry = self.telemetry
        self._queues: dict[str, deque[_Job]] = {
            p: deque() for p in PRIORITIES}
        self._worker: asyncio.Task | None = None
        self._served = 0
        self._rejected = 0
        self._expired_in_queue = 0
        self._degraded_by_brownout = 0

    # -- public async API ---------------------------------------------------------

    async def search(self, api_key: str, request: SearchRequest, *,
                     priority: str | None = None) -> GatewayResponse:
        """Admit, queue, and serve one search (or refuse it, typed)."""
        tenant, refusal = self._authorize(api_key, "search", request
                                          .request_id, priority)
        if refusal is not None:
            return refusal
        priority = priority or tenant.priority
        if priority not in PRIORITIES:
            return self._refuse("search", request.request_id,
                                tenant.tenant_id, str(priority),
                                "invalid",
                                f"unknown priority {priority!r}; "
                                f"expected one of {PRIORITIES}")
        level = self._refresh_brownout()
        if self.brownout.sheds_batch and priority == "batch":
            self.telemetry.metrics.counter(
                "repro_gateway_shed_total",
                "requests shed by the brownout ladder").inc(
                priority=priority)
            return self._refuse(
                "search", request.request_id, tenant.tenant_id,
                priority, "overloaded",
                f"brownout level {level} "
                f"({self.brownout.name}): batch tier is shed",
                retry_after_s=self._drain_hint())
        queue = self._queues[priority]
        if len(queue) >= self.queue_depth:
            self.telemetry.metrics.counter(
                "repro_gateway_queue_full_total",
                "arrivals rejected on a full priority queue").inc(
                priority=priority)
            return self._refuse(
                "search", request.request_id, tenant.tenant_id,
                priority, "overloaded",
                f"{priority} queue is full "
                f"({self.queue_depth} waiting)",
                retry_after_s=self._drain_hint())
        now = self.clock()
        deadline_at = None
        if request.deadline_s is not None:
            est_wait = self._est_wait(priority)
            if est_wait >= request.deadline_s:
                return self._refuse(
                    "search", request.request_id, tenant.tenant_id,
                    priority, "deadline_exceeded",
                    f"estimated queue wait {est_wait:.6f}s already "
                    f"exceeds the {request.deadline_s}s budget; "
                    f"rejected on arrival")
            deadline_at = now + request.deadline_s
        future = asyncio.get_running_loop().create_future()
        queue.append(_Job(request=request, tenant=tenant.tenant_id,
                          priority=priority, future=future,
                          admitted_at=now, deadline_at=deadline_at,
                          level_at_admit=level))
        self._gauge_queues()
        self._ensure_worker()
        return await future

    async def ingest(self, api_key: str, segments, *,
                     idempotency_key: str | None = None,
                     request_id: str = "") -> GatewayResponse:
        """Admit and apply one append (exactly-once under a key)."""
        return await self._mutate(
            api_key, "ingest", request_id,
            lambda: self.backend.ingest(
                segments, idempotency_key=idempotency_key))

    async def delete(self, api_key: str, traj_id: int, *,
                     idempotency_key: str | None = None,
                     request_id: str = "") -> GatewayResponse:
        """Admit and apply one trajectory delete."""
        return await self._mutate(
            api_key, "delete", request_id,
            lambda: self.backend.delete_trajectory(
                int(traj_id), idempotency_key=idempotency_key))

    async def drain(self) -> None:
        """Wait until both priority queues are empty (test/campaign
        convenience — the worker keeps running on its own)."""
        while self._worker is not None and not self._worker.done():
            await asyncio.sleep(0)

    # -- admission helpers --------------------------------------------------------

    def _authorize(self, api_key: str, kind: str, request_id: str,
                   priority: str | None
                   ) -> tuple[TenantConfig | None,
                              GatewayResponse | None]:
        tenant, verdict, retry_after = self.tenants.admit(api_key)
        if verdict == "ok":
            return tenant, None
        tenant_id = tenant.tenant_id if tenant is not None else "?"
        shown = priority or (tenant.priority if tenant else "?")
        if verdict == "unauthenticated":
            reason = "unknown API key"
        elif verdict == "quota_exceeded":
            reason = (f"daily quota of {tenant.daily_quota} requests "
                      f"exhausted; window resets in "
                      f"{retry_after:.1f}s")
        else:
            reason = (f"rate limit ({tenant.rate}/s, burst "
                      f"{tenant.burst:g}) exceeded")
        return None, self._refuse(kind, request_id, tenant_id, shown,
                                  verdict, reason,
                                  retry_after_s=retry_after)

    def _refuse(self, kind: str, request_id: str, tenant: str,
                priority: str, status: str, reason: str, *,
                retry_after_s: float | None = None) -> GatewayResponse:
        self._rejected += 1
        if retry_after_s is not None:
            retry_after_s = max(float(retry_after_s),
                                self.est_service_s)
        response = GatewayResponse(
            kind=kind, request_id=request_id, tenant=tenant,
            priority=priority, status=status, reason=reason,
            retry_after_s=retry_after_s)
        self._account(response)
        self.telemetry.events.emit(
            "gateway_reject", op=kind, request_id=request_id,
            tenant=tenant, priority=priority, status=status,
            reason=reason, retry_after_s=retry_after_s)
        return response

    def _est_wait(self, priority: str) -> float:
        """Estimated wait of a new arrival: everything that drains
        before it (interactive queues ahead of batch)."""
        ahead = len(self._queues["interactive"])
        if priority == "batch":
            ahead += len(self._queues["batch"])
        return ahead * self.est_service_s

    def _drain_hint(self) -> float:
        """Retry-after hint when queues are the bottleneck: time to
        drain one queue slot's worth of backlog."""
        return max(self.est_service_s,
                   self._est_wait("batch") / max(1, self.queue_depth))

    def _refresh_brownout(self) -> int:
        return self.brownout.update(self._pressure())

    def _pressure(self) -> float:
        """Overload pressure in [0, 1]: the worst of queue fullness,
        open circuit breakers, and dead/quarantined execution lanes."""
        fullness = max(len(q) / self.queue_depth
                       for q in self._queues.values())
        return min(1.0, max(fullness, self._backend_pressure()))

    def _backend_pressure(self) -> float:
        """Resilience pressure read off the backend's breaker/lane
        (or replica) state — duck-typed over both backend shapes."""
        backend = self.backend
        signals = [0.0]
        breakers = getattr(backend, "_breakers", None)
        if breakers:
            signals.append(
                sum(1 for b in breakers.values() if b.state == "open")
                / len(breakers))
        pool = getattr(backend, "pool", None)
        if pool is not None and pool.lanes:
            signals.append(
                sum(1 for lane in pool.lanes
                    if lane.health.state == "quarantined")
                / len(pool.lanes))
        shards = getattr(backend, "shards", None)
        if shards is not None:
            replicas = [r for s in shards for r in s.replicas]
            if replicas:
                signals.append(
                    sum(1 for r in replicas if not r.live)
                    / len(replicas))
        return max(signals)

    # -- the drain worker ---------------------------------------------------------

    def _ensure_worker(self) -> None:
        if self._worker is None or self._worker.done():
            self._worker = asyncio.get_running_loop().create_task(
                self._drain_loop())

    def _next_job(self) -> _Job | None:
        for priority in PRIORITIES:
            if self._queues[priority]:
                return self._queues[priority].popleft()
        return None

    async def _drain_loop(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            response = self._dispatch(job)
            if not job.future.done():
                job.future.set_result(response)
            self._gauge_queues()
            # Yield so admitted-but-unawaited callers get scheduled.
            await asyncio.sleep(0)

    def _dispatch(self, job: _Job) -> GatewayResponse:
        """Serve one dequeued job against the backend."""
        now = self.clock()
        waited = max(0.0, now - job.admitted_at)
        self.telemetry.metrics.histogram(
            "repro_gateway_queue_wait_seconds",
            "gateway-clock wait between admission and dispatch"
        ).observe(waited, priority=job.priority)
        if job.deadline_at is not None and now >= job.deadline_at:
            self._expired_in_queue += 1
            self.telemetry.metrics.counter(
                "repro_gateway_expired_in_queue_total",
                "queued requests whose deadline expired before "
                "dispatch").inc(priority=job.priority)
            return self._refuse(
                "search", job.request.request_id, job.tenant,
                job.priority, "deadline_exceeded",
                f"budget expired after {waited:.6f}s in the "
                f"{job.priority} queue; never dispatched")
        request = job.request
        if job.deadline_at is not None:
            # Hand the backend only the *remaining* budget.
            request = replace(request,
                              deadline_s=job.deadline_at - now)
        if self.brownout.degrades_engine and request.method == "auto":
            self._degraded_by_brownout += 1
            self.telemetry.metrics.counter(
                "repro_gateway_brownout_degrades_total",
                "auto requests pinned to cpu_scan by brownout").inc()
            request = replace(request, method="cpu_scan")
        backend_resp: SearchResponse = self.backend.submit(request)
        return self._wrap(job, backend_resp)

    def _wrap(self, job: _Job,
              resp: SearchResponse) -> GatewayResponse:
        retry_after = (self._drain_hint()
                       if resp.status == "overloaded" else None)
        response = GatewayResponse(
            kind="search", request_id=job.request.request_id,
            tenant=job.tenant, priority=job.priority,
            status=resp.status, reason=resp.reason,
            retry_after_s=retry_after, response=resp)
        if response.ok:
            self._served += 1
            modeled = (resp.metrics.queue_wait_s
                       + resp.metrics.modeled_seconds)
            self.telemetry.metrics.histogram(
                "repro_gateway_latency_seconds",
                "modeled end-to-end latency of answered requests"
            ).observe(modeled, priority=job.priority)
            # Refine the arrival-time wait estimator.
            self.est_service_s = (0.8 * self.est_service_s
                                  + 0.2 * max(modeled, 1e-9))
        else:
            self._rejected += 1
        self._account(response)
        return response

    # -- mutations ----------------------------------------------------------------

    async def _mutate(self, api_key: str, kind: str, request_id: str,
                      apply) -> GatewayResponse:
        tenant, refusal = self._authorize(api_key, kind, request_id,
                                          None)
        if refusal is not None:
            return refusal
        level = self._refresh_brownout()
        if self.brownout.refuses_writes:
            return self._refuse(
                kind, request_id, tenant.tenant_id, tenant.priority,
                "writes_disabled",
                f"brownout level {level} ({self.brownout.name}): "
                f"mutations refused, reads still serving",
                retry_after_s=self._drain_hint())
        try:
            receipt = apply()
        except IngestError as exc:
            return self._refuse(kind, request_id, tenant.tenant_id,
                                tenant.priority, "invalid", str(exc))
        if isinstance(receipt, IngestReceipt):
            receipt = receipt.to_dict()
        elif not isinstance(receipt, dict):
            receipt = {"hidden": int(receipt)}
        self._served += 1
        response = GatewayResponse(
            kind=kind, request_id=request_id,
            tenant=tenant.tenant_id, priority=tenant.priority,
            status="ok", receipt=receipt)
        self._account(response)
        return response

    # -- accounting & exposition --------------------------------------------------

    def _account(self, response: GatewayResponse) -> None:
        self.telemetry.metrics.counter(
            "repro_gateway_requests_total",
            "front-door requests by tenant/priority/status").inc(
            tenant=response.tenant, priority=response.priority,
            status=response.status)
        if response.rejected:
            self.telemetry.metrics.counter(
                "repro_gateway_rejections_total",
                "typed front-door refusals").inc(
                status=response.status)

    def _gauge_queues(self) -> None:
        for priority, queue in self._queues.items():
            self.telemetry.metrics.gauge(
                "repro_gateway_queue_depth",
                "requests waiting per priority queue").set(
                len(queue), priority=priority)

    def metrics_text(self) -> str:
        """One Prometheus exposition: gateway + backend series."""
        return self.merged_metrics().to_prometheus_text()

    def merged_metrics(self) -> MetricsRegistry:
        merged = MetricsRegistry()
        merged.merge_from(self.telemetry.metrics, component="gateway")
        backend_merged = getattr(self.backend, "merged_metrics", None)
        if backend_merged is not None:
            merged.merge_from(backend_merged())
        else:
            merged.merge_from(self.backend.telemetry.metrics,
                              component="service")
        return merged

    def stats(self) -> dict:
        """JSON-friendly front-door health snapshot."""
        return {
            "served": self._served,
            "rejected": self._rejected,
            "expired_in_queue": self._expired_in_queue,
            "degraded_by_brownout": self._degraded_by_brownout,
            "est_service_s": self.est_service_s,
            "queues": {p: len(q) for p, q in self._queues.items()},
            "queue_depth": self.queue_depth,
            "brownout": self.brownout.to_dict(),
            "tenants": self.tenants.stats(),
        }
