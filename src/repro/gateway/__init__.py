"""The admission-controlled front door: tenants, rate limits,
priority queues, brownout, idempotent retries, and the seeded
overload campaign (see ``docs/ARCHITECTURE.md``, *Front door &
admission control*)."""

from .admission import (GATEWAY_STATUSES, PRIORITIES,
                        RETRYABLE_STATUSES, GatewayResponse)
from .app import Gateway
from .brownout import BROWNOUT_LEVELS, BrownoutLadder
from .campaign import (OverloadConfig, OverloadReport, SimClock,
                       run_overload_campaign)
from .http import GatewayHTTPServer, STATUS_CODES
from .idempotency import RetryOutcome, retry_with_backoff
from .tenants import (QUOTA_WINDOW_S, TenantConfig, TenantRegistry,
                      TokenBucket)

__all__ = [
    "BROWNOUT_LEVELS", "BrownoutLadder", "GATEWAY_STATUSES",
    "Gateway", "GatewayHTTPServer", "GatewayResponse",
    "OverloadConfig", "OverloadReport", "PRIORITIES",
    "QUOTA_WINDOW_S", "RETRYABLE_STATUSES", "RetryOutcome",
    "STATUS_CODES", "SimClock", "TenantConfig", "TenantRegistry",
    "TokenBucket", "retry_with_backoff", "run_overload_campaign",
]
