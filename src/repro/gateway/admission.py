"""Typed admission vocabulary of the gateway front door.

The gateway widens the service's response statuses with the refusal
kinds only a front door can produce (bad credentials, budget
exhaustion, write brownout).  Every refusal is *typed* — a
:class:`GatewayResponse` always says why, and every retryable refusal
carries ``retry_after_s``, the client's backoff hint (the HTTP layer
maps it to a ``Retry-After`` header).  Nothing is ever silently
dropped: a request that enters :meth:`repro.gateway.Gateway.search`
leaves it as exactly one response.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..service import SearchResponse

__all__ = ["GATEWAY_STATUSES", "PRIORITIES", "RETRYABLE_STATUSES",
           "GatewayResponse"]

#: priority classes, best first; admission drains queues in this order
#: and brownout sheds from the back.
PRIORITIES = ("interactive", "batch")

#: every status a gateway response can carry.  ``ok``/``partial``
#: wrap a backend answer; the rest are typed refusals with no answer.
GATEWAY_STATUSES = ("ok", "partial", "unauthenticated", "rate_limited",
                    "quota_exceeded", "overloaded", "deadline_exceeded",
                    "writes_disabled", "invalid")

#: refusals a client should retry (after ``retry_after_s``); the
#: others need a different request, not a later one.
RETRYABLE_STATUSES = ("rate_limited", "quota_exceeded", "overloaded",
                      "writes_disabled")


@dataclass
class GatewayResponse:
    """One front-door answer: a wrapped backend response or a typed
    refusal.

    ``response`` is the backend :class:`~repro.service.SearchResponse`
    for answered searches; ``receipt`` is the mutation receipt dict for
    answered ingests/deletes.  Refusals carry neither — just ``status``,
    ``reason``, and (when retryable) ``retry_after_s``.
    """

    kind: str
    request_id: str
    tenant: str
    priority: str
    status: str
    reason: str = ""
    retry_after_s: float | None = None
    response: SearchResponse | None = None
    receipt: dict | None = None

    def __post_init__(self) -> None:
        if self.status not in GATEWAY_STATUSES:
            raise ValueError(f"unknown gateway status {self.status!r}; "
                             f"expected one of {GATEWAY_STATUSES}")
        if self.retryable and self.retry_after_s is None:
            raise ValueError(f"a {self.status!r} refusal must carry a "
                             f"retry_after_s hint")

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "partial")

    @property
    def rejected(self) -> bool:
        return not self.ok

    @property
    def retryable(self) -> bool:
        return self.status in RETRYABLE_STATUSES

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "kind": self.kind,
            "request_id": self.request_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "status": self.status,
            "reason": self.reason,
            "retry_after_s": self.retry_after_s,
            "response": (self.response.to_dict()
                         if self.response is not None else None),
            "receipt": self.receipt,
        }
