"""The seeded overload campaign: a many-tenant storm past saturation.

``python -m repro overload`` drives a :class:`~repro.gateway.Gateway`
(fronting one durable, fault-injectable
:class:`~repro.service.QueryService`) through a deterministic storm
and reports whether overload stayed *civilized*:

* several tenants with different budgets — a well-behaved interactive
  tenant, a batch tenant, an abusive one with a tight token bucket,
  and one with a tiny daily quota — fire bursts that deliberately
  exceed the queue bound, so queue-full sheds, brownout escalation,
  rate limits, and quota exhaustion all *must* occur;
* the whole storm runs on a simulated clock that advances one tick
  per dispatched request (slow-client time passing in the queue), so
  staggered deadlines expire both on arrival and mid-queue;
* a fault injector arms mid-storm (GPU OOMs, transfer errors, kernel
  aborts) and disarms before the end, exercising the failover ladder
  under admission pressure;
* every mutation is sent through the keyed retry helper **twice**,
  and the service is crashed (abandoned un-shutdown) and recovered
  mid-campaign, after which a pre-crash key is retried — exactly-once
  must hold through the WAL/checkpoint round trip;
* **exactness**: every answered search is compared byte-for-byte
  against a ``cpu_scan`` referee over the snapshot epoch it was
  served from; every refusal must be typed, retryable ones carrying a
  ``retry_after_s`` hint (enforced by construction in
  :class:`~repro.gateway.admission.GatewayResponse`).

The report carries modeled p50/p99 latency per priority class —
modeled values only, so the benchmark JSON is stable across machines
and seeds reproduce bit-identical reports.
"""

from __future__ import annotations

import asyncio
import tempfile
from dataclasses import dataclass, field

import numpy as np

from ..engines.base import RetryPolicy
from ..engines.cpu_scan import CpuScanEngine
from ..faults.campaign import _walk_db
from ..faults.crashes import _result_bytes
from ..faults.injector import FaultInjector, FaultSpec
from ..ingest import CompactionPolicy
from ..obs import Telemetry
from ..service import QueryService, SearchRequest
from .app import Gateway
from .idempotency import retry_with_backoff
from .tenants import TenantConfig

__all__ = ["OverloadConfig", "OverloadReport", "SimClock",
           "run_overload_campaign"]


class SimClock:
    """Deterministic campaign clock (seconds); the gateway, the tenant
    buckets, and the backend wrapper all share one instance."""

    def __init__(self, start: float = 0.0) -> None:
        self.t = float(start)

    def now(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("the campaign clock never goes back")
        self.t += dt


class _TickingBackend:
    """Backend wrapper advancing the sim clock one service tick per
    dispatched search — the mechanism by which time passes *inside* a
    burst, so deadlines can expire while queued.  Everything else
    (attributes included, so brownout still reads breaker/lane state)
    delegates to the wrapped service."""

    def __init__(self, service: QueryService, clock: SimClock,
                 tick_s: float) -> None:
        self._service = service
        self._clock = clock
        self._tick_s = tick_s

    def submit(self, request: SearchRequest):
        self._clock.advance(self._tick_s)
        return self._service.submit(request)

    def __getattr__(self, name):
        return getattr(self._service, name)


@dataclass(frozen=True)
class OverloadConfig:
    """Knobs of one overload campaign; everything derives from
    ``seed``."""

    seed: int = 0
    num_bursts: int = 10
    #: bound of each gateway priority queue — deliberately smaller
    #: than a burst so queue-full sheds are guaranteed.
    queue_depth: int = 5
    #: interactive arrivals per burst from the main tenant (> queue
    #: depth; the overflow is shed on arrival).
    interactive_per_burst: int = 9
    batch_per_burst: int = 4
    #: database size: trajectories x timesteps of random walk.
    num_trajectories: int = 16
    steps: int = 10
    num_query_sets: int = 6
    queries_per_set: int = 3
    d: float = 2.5
    #: sim-clock seconds one dispatched search consumes.
    service_tick_s: float = 0.01
    #: sim-clock seconds between bursts (lets token buckets refill).
    inter_burst_s: float = 10.0
    #: burst index at which the service is crashed and recovered
    #: (0 = never crash).
    crash_at_burst: int = 6
    #: bursts [from, until) run with the fault injector armed.
    faults_from: int = 3
    faults_until: int = 8
    injection_rate: float = 0.06
    #: timesteps of each ingested trajectory.
    ingest_steps: int = 6
    #: abusive tenant's token budget (rate/s, burst) and its arrivals
    #: per burst (> refill, so rate_limited is guaranteed).
    greedy_rate: float = 0.2
    greedy_burst: float = 2.0
    greedy_per_burst: int = 4
    #: capped tenant's whole-campaign quota and arrivals per burst
    #: (quota < total arrivals, so quota_exceeded is guaranteed).
    capped_quota: int = 6
    capped_per_burst: int = 2
    #: WAL/checkpoint root (None = a private temp directory).
    durability_dir: str | None = None

    def __post_init__(self) -> None:
        if self.num_bursts < 1:
            raise ValueError("num_bursts must be >= 1")
        if self.interactive_per_burst <= self.queue_depth:
            raise ValueError("interactive_per_burst must exceed "
                             "queue_depth (the storm must saturate)")
        if self.crash_at_burst >= self.num_bursts:
            raise ValueError("crash_at_burst must fall inside the "
                             "campaign (or be 0)")
        if not (0.0 <= self.injection_rate <= 1.0):
            raise ValueError("injection_rate must be within [0, 1]")

    def tenants(self) -> list[TenantConfig]:
        return [
            TenantConfig("alpha", "key-alpha", rate=1000.0,
                         burst=1000.0, priority="interactive"),
            TenantConfig("bravo", "key-bravo", rate=1000.0,
                         burst=1000.0, priority="batch"),
            TenantConfig("greedy", "key-greedy",
                         rate=self.greedy_rate,
                         burst=self.greedy_burst,
                         priority="interactive"),
            TenantConfig("capped", "key-capped", rate=1000.0,
                         burst=1000.0, daily_quota=self.capped_quota,
                         priority="interactive"),
        ]

    def fault_specs(self) -> list[FaultSpec]:
        r = self.injection_rate
        return [FaultSpec(kind="oom", rate=r / 2.0),
                FaultSpec(kind="h2d", rate=r),
                FaultSpec(kind="d2h", rate=r),
                FaultSpec(kind="kernel_abort", rate=r)]

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "seed": self.seed, "num_bursts": self.num_bursts,
            "queue_depth": self.queue_depth,
            "interactive_per_burst": self.interactive_per_burst,
            "batch_per_burst": self.batch_per_burst,
            "num_trajectories": self.num_trajectories,
            "steps": self.steps,
            "num_query_sets": self.num_query_sets,
            "queries_per_set": self.queries_per_set, "d": self.d,
            "service_tick_s": self.service_tick_s,
            "inter_burst_s": self.inter_burst_s,
            "crash_at_burst": self.crash_at_burst,
            "faults_from": self.faults_from,
            "faults_until": self.faults_until,
            "injection_rate": self.injection_rate,
            "ingest_steps": self.ingest_steps,
            "greedy_rate": self.greedy_rate,
            "greedy_burst": self.greedy_burst,
            "greedy_per_burst": self.greedy_per_burst,
            "capped_quota": self.capped_quota,
            "capped_per_burst": self.capped_per_burst,
        }


@dataclass
class OverloadReport:
    """Survival report of one overload campaign."""

    config: dict
    #: gateway responses by status.
    outcomes: dict = field(default_factory=dict)
    #: answered *searches* (ok/partial, excluding mutations).
    search_answered: int = 0
    #: answered searches verified byte-identical to the referee.
    verified: int = 0
    #: request ids whose results disagreed with the referee.
    mismatches: list = field(default_factory=list)
    #: request ids of retryable refusals missing a retry hint
    #: (impossible by construction; asserted anyway).
    missing_hints: list = field(default_factory=list)
    #: brownout sheds + queue-full rejections (the "shed burst").
    sheds: int = 0
    queue_full: int = 0
    expired_in_queue: int = 0
    #: keyed mutation retries that deduplicated (exactly-once hits).
    dedups: int = 0
    #: did a pre-crash key dedup *after* crash/recover.
    post_recovery_dedup: bool = False
    brownout_transitions: int = 0
    recoveries: int = 0
    #: modeled latency percentiles per priority class.
    latency: dict = field(default_factory=dict)
    injector: dict = field(default_factory=dict)
    gateway: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.outcomes.values())

    @property
    def answered(self) -> int:
        return self.outcomes.get("ok", 0) + self.outcomes.get(
            "partial", 0)

    @property
    def ok(self) -> bool:
        """Did overload stay civilized: every answer exact, every
        refusal typed and hinted, shedding/brownout/dedup all
        exercised, exactly-once held across the crash."""
        return (not self.mismatches
                and not self.missing_hints
                and self.verified == self.search_answered
                and self.search_answered > 0
                and self.sheds + self.queue_full >= 1
                and self.dedups >= 1
                and self.brownout_transitions >= 1
                and self.post_recovery_dedup
                and self.outcomes.get("rate_limited", 0) >= 1
                and self.outcomes.get("quota_exceeded", 0) >= 1
                and self.outcomes.get("deadline_exceeded", 0) >= 1)

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "config": self.config,
            "outcomes": dict(self.outcomes),
            "answered": self.answered,
            "search_answered": self.search_answered,
            "verified": self.verified,
            "mismatches": list(self.mismatches),
            "missing_hints": list(self.missing_hints),
            "sheds": self.sheds,
            "queue_full": self.queue_full,
            "expired_in_queue": self.expired_in_queue,
            "dedups": self.dedups,
            "post_recovery_dedup": self.post_recovery_dedup,
            "brownout_transitions": self.brownout_transitions,
            "recoveries": self.recoveries,
            "latency": dict(self.latency),
            "injector": self.injector,
            "gateway": self.gateway,
            "ok": self.ok,
        }

    def bench_entry(self) -> dict:
        """The per-seed benchmark record (modeled values only)."""
        return {"seed": self.config["seed"],
                "requests": self.total,
                "answered": self.answered,
                "latency": dict(self.latency),
                "outcomes": dict(self.outcomes)}

    def render(self) -> str:
        """Human-readable survival report."""
        lines = [
            "overload campaign report",
            f"  seed                {self.config['seed']}",
            f"  requests            {self.total}",
        ]
        for status in sorted(self.outcomes):
            lines.append(
                f"    {status:<18}{self.outcomes[status]}")
        lines += [
            f"  verified exact      "
            f"{self.verified}/{self.search_answered}",
            f"  mismatches          {len(self.mismatches)}",
            f"  missing hints       {len(self.missing_hints)}",
            f"  sheds (brownout)    {self.sheds}",
            f"  sheds (queue full)  {self.queue_full}",
            f"  expired in queue    {self.expired_in_queue}",
            f"  idempotent dedups   {self.dedups} "
            f"(post-recovery: "
            f"{'yes' if self.post_recovery_dedup else 'NO'})",
            f"  brownout moves      {self.brownout_transitions}",
            f"  recoveries          {self.recoveries}",
            f"  faults injected     "
            f"{self.injector.get('total_fired', 0)} over "
            f"{self.injector.get('total_ops', 0)} ops",
        ]
        for priority, pct in sorted(self.latency.items()):
            lines.append(
                f"  {priority:<9} latency   p50 {pct['p50_ms']:.3f}ms"
                f"  p99 {pct['p99_ms']:.3f}ms  (n={pct['count']})")
        lines.append(
            f"  civilized           {'yes' if self.ok else 'NO'}")
        return "\n".join(lines)


def run_overload_campaign(config: OverloadConfig | None = None, *,
                          telemetry: Telemetry | None = None
                          ) -> OverloadReport:
    """Run one seeded overload campaign; returns its report."""
    cfg = config or OverloadConfig()
    if cfg.durability_dir is None:
        with tempfile.TemporaryDirectory(prefix="repro-gw-") as tmp:
            return _run(cfg, tmp, telemetry)
    return _run(cfg, cfg.durability_dir, telemetry)


def _build_service(cfg: OverloadConfig, durability_dir: str,
                   injector: FaultInjector) -> QueryService:
    database = _walk_db(cfg.num_trajectories, cfg.steps,
                        seed=cfg.seed)
    return QueryService(
        database, num_devices=2, faults=injector,
        retry=RetryPolicy(max_attempts=4, backoff_s=1e-4),
        telemetry=Telemetry(),
        durability_dir=durability_dir,
        breaker_reset_s=1e-5, lane_quarantine_s=2e-5,
        compaction=CompactionPolicy(max_delta_segments=200))


def _run(cfg: OverloadConfig, durability_dir: str,
         telemetry: Telemetry | None) -> OverloadReport:
    clock = SimClock()
    rng = np.random.default_rng(cfg.seed)
    injector = FaultInjector(cfg.fault_specs(), seed=cfg.seed)
    injector.enabled = False
    service = _build_service(cfg, durability_dir, injector)
    gateway = Gateway(
        _TickingBackend(service, clock, cfg.service_tick_s),
        cfg.tenants(), queue_depth=cfg.queue_depth,
        est_service_s=cfg.service_tick_s, clock=clock.now,
        telemetry=telemetry)
    query_sets = [
        _walk_db(cfg.queries_per_set, cfg.steps,
                 seed=cfg.seed + 1000 + i, id_offset=10_000 + 100 * i)
        for i in range(cfg.num_query_sets)
    ]
    report = OverloadReport(config=cfg.to_dict())

    # -- the referee: cpu_scan over the snapshot each answer was
    # pinned to, compared byte-for-byte.
    snapshots: dict[int, object] = {}
    referee_bytes: dict[tuple[int, int], tuple] = {}

    def note_epoch() -> None:
        snap = gateway.backend.versioned.snapshot()
        snapshots.setdefault(snap.epoch, snap)

    def referee_for(epoch: int, qi: int) -> tuple:
        key = (epoch, qi)
        if key not in referee_bytes:
            engine = CpuScanEngine(snapshots[epoch].logical())
            results = engine.search(query_sets[qi], cfg.d)[0]
            referee_bytes[key] = _result_bytes(results)
        return referee_bytes[key]

    note_epoch()

    def record(resp, qi: int | None) -> None:
        report.outcomes[resp.status] = \
            report.outcomes.get(resp.status, 0) + 1
        if resp.retryable and resp.retry_after_s is None:
            report.missing_hints.append(resp.request_id)
        if resp.ok and resp.kind == "search":
            report.search_answered += 1
            backend = resp.response
            epoch = backend.metrics.snapshot_epoch
            got = _result_bytes(backend.outcome.results)
            if got == referee_for(epoch, qi):
                report.verified += 1
            else:
                report.mismatches.append(resp.request_id)
            latencies[resp.priority].append(
                backend.metrics.queue_wait_s
                + backend.metrics.modeled_seconds)

    latencies: dict[str, list[float]] = {"interactive": [],
                                         "batch": []}

    def ingest_twice(burst: int, key: str) -> None:
        """One keyed append sent twice through the retry helper —
        the duplicate must dedup, exactly-once."""
        traj = _walk_db(1, cfg.ingest_steps,
                        seed=cfg.seed + 5000 + burst,
                        id_offset=50_000 + burst)

        async def send_async():
            return await gateway.ingest(
                "key-alpha", traj, idempotency_key=key,
                request_id=f"ing-{burst}")

        def send():
            return asyncio.run(send_async())

        for attempt in range(2):
            outcome = retry_with_backoff(
                send, max_attempts=3, base_backoff_s=0.01,
                rng=rng, sleep=clock.advance)
            resp = outcome.response
            report.outcomes[resp.status] = \
                report.outcomes.get(resp.status, 0) + 1
            if resp.ok and resp.receipt.get("deduplicated"):
                report.dedups += 1
        note_epoch()

    def crash_and_recover() -> None:
        """Abandon the service mid-storm (no shutdown — a crash) and
        recover from its WAL + checkpoints; the gateway re-fronts the
        recovered service with the ticking wrapper."""
        recovered = QueryService.recover(
            durability_dir, faults=injector,
            retry=RetryPolicy(max_attempts=4, backoff_s=1e-4),
            telemetry=Telemetry(),
            breaker_reset_s=1e-5, lane_quarantine_s=2e-5,
            compaction=CompactionPolicy(max_delta_segments=200))
        gateway.backend = _TickingBackend(recovered, clock,
                                          cfg.service_tick_s)
        report.recoveries += 1
        snapshots.clear()
        referee_bytes.clear()
        note_epoch()

    async def run_burst(burst: int) -> None:
        jobs: list[tuple] = []  # (coroutine, qi)

        def search(tenant_key: str, j: int, *, priority=None,
                   deadline_s=None, method="auto") -> None:
            qi = (burst * 7 + j) % len(query_sets)
            rid = f"b{burst:02d}-{tenant_key.removeprefix('key-')}" \
                  f"-{j:02d}"
            request = SearchRequest(
                queries=query_sets[qi], d=cfg.d, method=method,
                deadline_s=deadline_s, request_id=rid)
            jobs.append((gateway.search(tenant_key, request,
                                        priority=priority), qi))

        # A little batch traffic lands *before* the storm, while the
        # ladder is calm — these are answered, so the batch tier has
        # real latency percentiles to report.
        for j in range(2):
            search("key-bravo", j, priority="batch")
        # The interactive flood: more arrivals than the queue holds.
        # A deterministic few carry deadlines sized to expire in the
        # queue (the sim clock advances one tick per dispatch), one
        # carries a budget so tight it is refused up front, and every
        # third asks for an explicit GPU engine — brownout only
        # rewrites ``auto``, so the fault injector sees real GPU work
        # mid-storm and the failover ladder runs under pressure.
        for j in range(cfg.interactive_per_burst):
            deadline = None
            if j % 4 == 3:
                deadline = cfg.service_tick_s * (1.5 + (j % 3))
            method = "gpu_temporal" if j % 3 == 1 else "auto"
            search("key-alpha", j, deadline_s=deadline,
                   method=method)
        search("key-alpha", cfg.interactive_per_burst,
               deadline_s=cfg.service_tick_s * 1e-6)
        # Batch arrivals land on a saturated gateway: brownout sheds.
        for j in range(cfg.batch_per_burst):
            search("key-bravo", 100 + j, priority="batch")
        # The abuser: exceeds its bucket every burst.
        for j in range(cfg.greedy_per_burst):
            search("key-greedy", 200 + j)
        # The capped tenant: exhausts its campaign quota mid-storm.
        for j in range(cfg.capped_per_burst):
            search("key-capped", 300 + j)

        responses = await asyncio.gather(*[c for c, _ in jobs])
        for (_, qi), resp in zip(jobs, responses):
            record(resp, qi)

    for burst in range(cfg.num_bursts):
        injector.enabled = cfg.faults_from <= burst < cfg.faults_until
        if cfg.crash_at_burst and burst == cfg.crash_at_burst:
            crash_and_recover()
            # Exactly-once across the crash: a key applied *before*
            # the crash must dedup from the recovered table.
            pre_key = f"mut-{cfg.crash_at_burst - 2}"

            async def retry_pre_crash():
                return await gateway.ingest(
                    "key-alpha",
                    _walk_db(1, cfg.ingest_steps,
                             seed=cfg.seed + 5000
                             + cfg.crash_at_burst - 2,
                             id_offset=50_000 + cfg.crash_at_burst
                             - 2),
                    idempotency_key=pre_key,
                    request_id="post-recovery-retry")

            resp = asyncio.run(retry_pre_crash())
            report.outcomes[resp.status] = \
                report.outcomes.get(resp.status, 0) + 1
            if resp.ok and resp.receipt.get("deduplicated"):
                report.dedups += 1
                report.post_recovery_dedup = True
        ingest_twice(burst, f"mut-{burst}")
        asyncio.run(run_burst(burst))
        clock.advance(cfg.inter_burst_s)

    injector.enabled = True  # report the full spec table
    report.injector = injector.report()
    report.gateway = gateway.stats()
    report.brownout_transitions = len(
        gateway.brownout.transitions)
    report.sheds = int(gateway.telemetry.metrics.counter(
        "repro_gateway_shed_total").total())
    report.queue_full = int(gateway.telemetry.metrics.counter(
        "repro_gateway_queue_full_total").total())
    report.expired_in_queue = int(gateway.telemetry.metrics.counter(
        "repro_gateway_expired_in_queue_total").total())
    for priority, values in latencies.items():
        if not values:
            continue
        arr = np.asarray(values)
        report.latency[priority] = {
            "count": int(arr.size),
            "p50_ms": float(np.percentile(arr, 50) * 1e3),
            "p99_ms": float(np.percentile(arr, 99) * 1e3),
            "mean_ms": float(arr.mean() * 1e3),
        }
    gateway.backend.shutdown()
    return report
