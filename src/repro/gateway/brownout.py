"""The brownout ladder: graceful degradation under sustained pressure.

Overload handling has two time scales.  Queue-full and infeasible-
deadline rejections are *instantaneous* (per request, in
:mod:`repro.gateway.app`); the brownout ladder is the *sustained*
response — a small state machine stepping through increasingly blunt
degradations as a scalar pressure signal rises:

==== ======================= ==========================================
lvl  name                    effect
==== ======================= ==========================================
0    normal                  everything admitted on its own merits
1    shed-batch              the batch tier is rejected on arrival
2    degrade-engine          ``method="auto"`` is rewritten to
                             ``cpu_scan`` — answers stay byte-identical
                             (cpu_scan *is* the referee engine), only
                             slower; explicit GPU requests still run
3    refuse-writes           mutations are refused (reads still serve)
==== ======================= ==========================================

Pressure is the max of three normalized signals the gateway computes
from its queues and the backend's resilience state (circuit breakers
open, lanes quarantined / replicas dead).  Escalation is immediate;
de-escalation requires pressure to drop ``hysteresis`` *below* the
entry threshold so the ladder does not flap at a boundary.

Every transition is a labeled counter
(``repro_gateway_brownout_transitions_total{from_level,to_level}``),
a gauge (``repro_gateway_brownout_level``), and a structured event —
an operator can reconstruct the whole storm from ``/metrics``.
"""

from __future__ import annotations

from ..obs import Telemetry

__all__ = ["BROWNOUT_LEVELS", "BrownoutLadder"]

#: level names, index = level number.
BROWNOUT_LEVELS = ("normal", "shed_batch", "degrade_engine",
                   "refuse_writes")


class BrownoutLadder:
    """Pressure-driven degradation state machine (see module docs)."""

    def __init__(self, *, telemetry: Telemetry | None = None,
                 thresholds: tuple[float, float, float] = (0.5, 0.75,
                                                           0.92),
                 hysteresis: float = 0.1) -> None:
        if len(thresholds) != 3:
            raise ValueError("thresholds must give entry pressure for "
                             "levels 1, 2, and 3")
        if list(thresholds) != sorted(thresholds):
            raise ValueError("thresholds must be increasing")
        if hysteresis < 0:
            raise ValueError("hysteresis must be >= 0")
        self.telemetry = telemetry or Telemetry()
        self.thresholds = tuple(float(t) for t in thresholds)
        self.hysteresis = float(hysteresis)
        self.level = 0
        self.pressure = 0.0
        #: ``(from_level, to_level, pressure)`` per transition.
        self.transitions: list[tuple[int, int, float]] = []
        self._gauge()

    # -- effects -----------------------------------------------------------------

    @property
    def sheds_batch(self) -> bool:
        return self.level >= 1

    @property
    def degrades_engine(self) -> bool:
        return self.level >= 2

    @property
    def refuses_writes(self) -> bool:
        return self.level >= 3

    @property
    def name(self) -> str:
        return BROWNOUT_LEVELS[self.level]

    # -- state machine -----------------------------------------------------------

    def _target_level(self, pressure: float) -> int:
        up = 0
        for i, entry in enumerate(self.thresholds, start=1):
            if pressure >= entry:
                up = i
        if up >= self.level:
            return up
        # De-escalation: drop only the levels whose entry threshold the
        # pressure has cleared by the hysteresis margin.
        down = self.level
        while down > 0 and \
                pressure < self.thresholds[down - 1] - self.hysteresis:
            down -= 1
        return down

    def update(self, pressure: float) -> int:
        """Feed one pressure sample; returns the (possibly new) level."""
        self.pressure = float(pressure)
        target = self._target_level(self.pressure)
        if target != self.level:
            prev = self.level
            self.level = target
            self.transitions.append((prev, target, self.pressure))
            self.telemetry.metrics.counter(
                "repro_gateway_brownout_transitions_total",
                "brownout ladder transitions (labeled from/to)").inc(
                from_level=str(prev), to_level=str(target))
            self.telemetry.events.emit(
                "brownout_transition", from_level=prev,
                to_level=target, from_name=BROWNOUT_LEVELS[prev],
                to_name=BROWNOUT_LEVELS[target],
                pressure=self.pressure)
        self._gauge()
        return self.level

    def _gauge(self) -> None:
        self.telemetry.metrics.gauge(
            "repro_gateway_brownout_level",
            "current brownout ladder level (0 normal .. 3 "
            "refuse-writes)").set(self.level)
        self.telemetry.metrics.gauge(
            "repro_gateway_pressure",
            "last overload pressure sample fed to the ladder").set(
            self.pressure)

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"level": self.level, "name": self.name,
                "pressure": self.pressure,
                "thresholds": list(self.thresholds),
                "hysteresis": self.hysteresis,
                "transitions": [list(t) for t in self.transitions]}
