"""Tenant identity, token-bucket rate limits, and daily quotas.

The front door authenticates every call by API key and charges it
against two per-tenant budgets *before* any queue or backend work
happens:

* a **token bucket** (``rate`` tokens/second refill, ``burst``
  capacity) smoothing sustained request rates while allowing short
  bursts — an empty bucket is a typed ``rate_limited`` rejection whose
  ``retry_after_s`` says exactly when the next token lands;
* a **daily quota** (requests per rolling UTC-style window of
  ``QUOTA_WINDOW_S`` seconds on the gateway clock) — an exhausted
  window is a typed ``quota_exceeded`` rejection whose hint is the
  time until the window resets.

Both run on an injectable ``clock`` (seconds, monotonic), so the
overload campaign drives them on a simulated clock and the same seed
reproduces the same admission decisions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

__all__ = ["QUOTA_WINDOW_S", "TenantConfig", "TenantRegistry",
           "TokenBucket"]

#: seconds per quota window ("daily" on the gateway clock).
QUOTA_WINDOW_S = 86_400.0


class TokenBucket:
    """Classic token bucket on an injectable clock.

    ``try_acquire`` either spends one token and returns ``None``, or
    leaves the bucket untouched and returns the seconds until a full
    token will be available — the ``Retry-After`` hint.
    """

    def __init__(self, rate: float, burst: float, *,
                 clock=time.monotonic) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive (tokens/second)")
        if burst < 1:
            raise ValueError("burst must be >= 1 token")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._refilled_at = now

    @property
    def tokens(self) -> float:
        self._refill(self._clock())
        return self._tokens

    def try_acquire(self, n: float = 1.0) -> float | None:
        """Spend ``n`` tokens now; ``None`` on success, else seconds
        until ``n`` tokens will have refilled."""
        now = self._clock()
        self._refill(now)
        if self._tokens >= n:
            self._tokens -= n
            return None
        return (n - self._tokens) / self.rate


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's identity and budgets.

    ``daily_quota`` is requests per :data:`QUOTA_WINDOW_S` window
    (``None`` = unmetered).  ``priority`` is the tenant's *default*
    priority class; a call may still name one explicitly.
    """

    tenant_id: str
    api_key: str
    rate: float = 10.0
    burst: float = 20.0
    daily_quota: int | None = None
    priority: str = "interactive"

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise ValueError("tenant_id must be non-empty")
        if not self.api_key:
            raise ValueError("api_key must be non-empty")
        if self.daily_quota is not None and self.daily_quota < 1:
            raise ValueError("daily_quota must be >= 1 (or None)")

    def to_dict(self) -> dict:
        """JSON-friendly representation (the API key included — this
        is server-side configuration, not a public listing)."""
        return {"tenant_id": self.tenant_id, "api_key": self.api_key,
                "rate": self.rate, "burst": self.burst,
                "daily_quota": self.daily_quota,
                "priority": self.priority}


class _TenantState:
    """Mutable per-tenant admission state."""

    def __init__(self, config: TenantConfig, clock) -> None:
        self.config = config
        self.bucket = TokenBucket(config.rate, config.burst,
                                  clock=clock)
        self.window_start = clock()
        self.window_used = 0
        self.admitted = 0
        self.rejected = 0


class TenantRegistry:
    """API-key lookup plus per-tenant budget accounting.

    :meth:`admit` is the whole per-tenant admission pipeline:
    authenticate, then quota, then rate — returning either the
    matched :class:`TenantConfig` or a typed refusal with its
    retry hint.
    """

    def __init__(self, tenants, *, clock=time.monotonic) -> None:
        self._clock = clock
        self._by_key: dict[str, _TenantState] = {}
        for cfg in tenants:
            if cfg.api_key in self._by_key:
                raise ValueError(f"duplicate api_key for tenant "
                                 f"{cfg.tenant_id!r}")
            self._by_key[cfg.api_key] = _TenantState(cfg, clock)

    def __len__(self) -> int:
        return len(self._by_key)

    def tenant(self, api_key: str) -> TenantConfig | None:
        state = self._by_key.get(api_key)
        return state.config if state is not None else None

    def admit(self, api_key: str
              ) -> tuple[TenantConfig | None, str, float | None]:
        """Charge one request to the tenant behind ``api_key``.

        Returns ``(tenant, verdict, retry_after_s)`` where verdict is
        ``"ok"``, ``"unauthenticated"``, ``"quota_exceeded"``, or
        ``"rate_limited"`` — quota is checked before rate so a capped
        tenant's rejection names the budget that actually binds."""
        state = self._by_key.get(api_key)
        if state is None:
            return None, "unauthenticated", None
        now = self._clock()
        quota = state.config.daily_quota
        if quota is not None:
            if now - state.window_start >= QUOTA_WINDOW_S:
                state.window_start = now
                state.window_used = 0
            if state.window_used >= quota:
                state.rejected += 1
                resets_in = state.window_start + QUOTA_WINDOW_S - now
                return (state.config, "quota_exceeded",
                        max(resets_in, 0.0))
        wait = state.bucket.try_acquire()
        if wait is not None:
            state.rejected += 1
            return state.config, "rate_limited", wait
        if quota is not None:
            state.window_used += 1
        state.admitted += 1
        return state.config, "ok", None

    def stats(self) -> dict:
        """Per-tenant admission counters (JSON-friendly)."""
        return {
            state.config.tenant_id: {
                "admitted": state.admitted,
                "rejected": state.rejected,
                "window_used": state.window_used,
                "tokens": round(state.bucket.tokens, 6),
            }
            for state in self._by_key.values()
        }
