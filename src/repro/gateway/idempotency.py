"""Client-side retry discipline for keyed mutations.

The server side of exactly-once lives in the idempotency dedup tables
(:class:`~repro.ingest.VersionedDatabase` for a single service, the
router for a sharded one) carried through the WAL and checkpoints.
This module is the *client* half: a retry loop with seeded jittered
exponential backoff that re-sends the **same idempotency key** on
every attempt — which is precisely what makes blind retries safe.
The overload campaign drives every mutation through it, including a
deliberate duplicate send per key, and asserts each key applied
exactly once (``deduplicated`` receipts on the extras).
"""

from __future__ import annotations

import numpy as np

from .admission import GatewayResponse

__all__ = ["RetryOutcome", "retry_with_backoff"]


class RetryOutcome:
    """What one keyed retry loop did: the final response plus the
    attempt/backoff trace (JSON-friendly via :meth:`to_dict`)."""

    def __init__(self, response: GatewayResponse, attempts: int,
                 backoffs: list[float]) -> None:
        self.response = response
        self.attempts = attempts
        self.backoffs = backoffs

    @property
    def ok(self) -> bool:
        return self.response.ok

    def to_dict(self) -> dict:
        return {"status": self.response.status,
                "attempts": self.attempts,
                "backoffs": [round(b, 9) for b in self.backoffs]}


def retry_with_backoff(send, *, max_attempts: int = 5,
                       base_backoff_s: float = 0.05,
                       rng: np.random.Generator | None = None,
                       sleep=None) -> RetryOutcome:
    """Drive one idempotent operation to completion through typed
    refusals.

    Parameters
    ----------
    send:
        Zero-argument callable performing one attempt (closing over
        the request *and its idempotency key*) and returning a
        :class:`GatewayResponse`.
    max_attempts:
        Attempt budget; the last response is returned even if still a
        refusal.
    base_backoff_s:
        Exponential base: attempt ``k`` backs off
        ``base * 2**k * U(0.5, 1.5)``, floored by the server's
        ``retry_after_s`` hint when one was given.
    rng:
        Seeded generator for the jitter (``None`` = fresh
        deterministic seed 0 — pass your own for campaign-grade
        reproducibility).
    sleep:
        ``sleep(seconds)`` callable (the campaign passes the simulated
        clock's ``advance``); ``None`` = don't actually wait, just
        record the computed backoffs.
    """
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    rng = rng or np.random.default_rng(0)
    backoffs: list[float] = []
    response = send()
    attempts = 1
    while attempts < max_attempts and response.rejected \
            and response.retryable:
        jitter = float(rng.uniform(0.5, 1.5))
        backoff = base_backoff_s * (2.0 ** (attempts - 1)) * jitter
        if response.retry_after_s is not None:
            backoff = max(backoff, float(response.retry_after_s))
        backoffs.append(backoff)
        if sleep is not None:
            sleep(backoff)
        response = send()
        attempts += 1
    return RetryOutcome(response, attempts, backoffs)
