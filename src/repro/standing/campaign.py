"""Standing-query campaign: epoch-by-epoch equivalence under crashes.

The headline proof of the standing-query subsystem: a seeded
moving-objects stream (:mod:`repro.data.moving`) is driven through a
durable :class:`~repro.service.QueryService` with continuous
subscriptions registered up front, and after **every** mutation the
maintained incremental answer of every subscription is compared —
byte-identically, via :func:`~repro.faults.crashes._result_bytes` —
against a from-scratch ``cpu_scan`` over the snapshot's logical
database.  Mid-stream the campaign forces compactions, kills the
process at a :class:`~repro.durability.KillSwitch` point, recovers with
:meth:`~repro.service.QueryService.recover`, and resumes the schedule;
the equivalence checks never stop.

On top of exactness the campaign models a *client*: it drains the typed
``match_added``/``match_removed`` event stream after every operation
(and across the crash), maintains its own match sets purely from the
events, and at the end asserts the event-folded sets equal the
service's maintained sets — no event was lost, duplicated, or emitted
out of life-cycle order (a pair is added at most once and only removed
after being added; entry ids are never reused, so that invariant is
exact, not probabilistic).

Finally the report asserts the maintenance was genuinely delta-aware:
``skipped`` (subscriptions proven unaffected by an epoch's candidate
envelope and not re-evaluated) must be positive, so the harness fails
if the manager silently degrades to re-evaluating everybody.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.types import SegmentArray, Trajectory
from ..data.moving import FleetConfig, MovingObjectsWorkload
from ..data.random_walk import make_random_walks
from ..durability import DurabilityPolicy, KILL_POINTS, KillSwitch, \
    SimulatedCrash
from ..engines.base import RetryPolicy
from ..engines.cpu_scan import CpuScanEngine
from ..faults.crashes import _result_bytes
from ..faults.injector import FaultInjector, FaultSpec
from ..obs import Telemetry
# Submodule imports, not the package: repro.service's __init__ imports
# repro.standing, so going through it would re-enter a half-initialized
# package when an import starts from the service side.
from ..service.requests import SearchRequest
from ..service.scheduler import QueryService
from .subscription import Subscription

__all__ = ["StandingCampaignConfig", "StandingCampaignReport",
           "run_standing_campaign"]

#: the match-delta event kinds the client model folds.
MATCH_KINDS = ("match_added", "match_removed")


@dataclass(frozen=True)
class StandingCampaignConfig:
    """Knobs of one standing campaign; everything derives from ``seed``."""

    seed: int = 0
    #: workload epochs streamed (each becomes >= 1 database mutation).
    stream_epochs: int = 16
    num_subscriptions: int = 6
    #: subscription distance threshold.
    d: float = 3.0
    fleet: FleetConfig = field(default_factory=FleetConfig)
    #: observations per subscription query trajectory.
    query_steps: int = 6
    query_step_sigma: float = 1.2
    #: every Nth subscription gets a temporal window (0 = none do).
    window_every: int = 3
    #: kill-point class for the mid-stream crash.
    kill_point: str = "wal_post_append"
    #: crash on exactly this mutation (None = mid-schedule default;
    #: only meaningful for the WAL kill points).
    crash_on_op: int | None = None
    checkpoint_every: int = 4
    sync: str = "fsync"
    #: wire a device FaultInjector + retries into the service, so the
    #: probe requests exercise the resilience ladder mid-campaign.
    faults: bool = False
    fault_rate: float = 0.12
    #: submit a one-shot probe request every Nth mutation (0 = never).
    probe_every: int = 5

    def __post_init__(self) -> None:
        if self.stream_epochs < 6:
            raise ValueError("stream_epochs must be >= 6 (the schedule "
                             "needs room for compactions and a "
                             "mid-stream crash)")
        if self.num_subscriptions < 1:
            raise ValueError("need at least one subscription")
        if self.d <= 0:
            raise ValueError("d must be positive")
        if self.kill_point not in KILL_POINTS:
            raise ValueError(f"unknown kill point {self.kill_point!r}; "
                             f"expected one of {KILL_POINTS}")


@dataclass
class StandingCampaignReport:
    """Everything one standing campaign measured."""

    config: StandingCampaignConfig
    num_ops: int = 0
    compactions: int = 0
    #: exactness checks run (one per subscription per mutation).
    checks: int = 0
    #: checks where the incremental answer != from-scratch cpu_scan.
    mismatches: list = field(default_factory=list)
    #: life-cycle violations in the drained event stream (duplicate
    #: adds, removes without adds, ...).
    event_violations: list = field(default_factory=list)
    #: the simulated crash actually fired.
    crash_fired: bool = False
    crash_occurrence: int = 0
    recovered_epoch: int = -1
    #: operations re-driven after recovery to finish the schedule.
    resumed_ops: int = 0
    #: standing-manager lifetime counters summed across the crashed
    #: and recovered service instances.
    standing: dict = field(default_factory=dict)
    #: event-folded client sets == maintained sets at end of stream.
    stream_consistent: bool = False
    probes_sent: int = 0
    probes_ok: int = 0
    #: device faults fired during probes, by kind (faults mode only).
    faults_fired: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def ok(self) -> bool:
        totals = self.standing
        return (self.error is None
                and self.checks > 0
                and not self.mismatches
                and not self.event_violations
                and self.compactions >= 1
                and self.crash_fired
                and totals.get("recoveries", 0) >= 1
                and totals.get("skipped", 0) > 0
                and totals.get("events_added", 0) > 0
                and self.stream_consistent)

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"seed": self.config.seed,
                "stream_epochs": self.config.stream_epochs,
                "subscriptions": self.config.num_subscriptions,
                "kill_point": self.config.kill_point,
                "num_ops": self.num_ops,
                "compactions": self.compactions,
                "checks": self.checks,
                "mismatches": list(self.mismatches),
                "event_violations": list(self.event_violations),
                "crash_fired": self.crash_fired,
                "crash_occurrence": self.crash_occurrence,
                "recovered_epoch": self.recovered_epoch,
                "resumed_ops": self.resumed_ops,
                "standing": dict(self.standing),
                "stream_consistent": self.stream_consistent,
                "probes_sent": self.probes_sent,
                "probes_ok": self.probes_ok,
                "faults_fired": dict(self.faults_fired),
                "error": self.error,
                "ok": self.ok}

    def render(self) -> str:
        """Human-readable summary."""
        t = self.standing
        lines = [
            f"standing campaign: seed={self.config.seed} "
            f"epochs={self.config.stream_epochs} "
            f"subs={self.config.num_subscriptions} "
            f"ops={self.num_ops} -> {'OK' if self.ok else 'FAILED'}",
            f"  exactness: {self.checks} checks, "
            f"{len(self.mismatches)} mismatches, "
            f"{len(self.event_violations)} event violations, "
            f"stream_consistent={'y' if self.stream_consistent else 'N'}",
            f"  crash: point={self.config.kill_point} "
            f"occ={self.crash_occurrence} "
            f"fired={'y' if self.crash_fired else 'N'} "
            f"recovered_epoch={self.recovered_epoch} "
            f"resumed={self.resumed_ops} "
            f"replayed_events={t.get('replayed_events', 0)} "
            f"caught_up={t.get('caught_up_events', 0)}",
            f"  maintenance: affected={t.get('affected', 0)} "
            f"skipped={t.get('skipped', 0)} "
            f"added={t.get('events_added', 0)} "
            f"removed={t.get('events_removed', 0)} "
            f"compactions={self.compactions}",
        ]
        if self.probes_sent:
            fired = sum(self.faults_fired.values())
            lines.append(f"  probes: {self.probes_ok}/"
                         f"{self.probes_sent} ok, "
                         f"{fired} device faults fired")
        if self.error:
            lines.append(f"  ERROR: {self.error}")
        return "\n".join(lines)


# -- schedule -----------------------------------------------------------------


def _materialize(cfg: StandingCampaignConfig, deltas: list
                 ) -> tuple[SegmentArray, list[tuple]]:
    """Fold the streamed epochs into a base + deterministic op schedule.

    The first epoch's segments seed the base; every later epoch becomes
    its departures' deletes followed by one append, with compactions
    forced at one and two thirds of the stream so the answer-invariance
    of folding is always exercised mid-campaign.
    """
    base = deltas[0].segments
    ingested = set(np.unique(base.traj_ids).tolist())
    compact_at = {max(1, cfg.stream_epochs // 3),
                  max(2, 2 * cfg.stream_epochs // 3)}
    schedule: list[tuple] = []
    for delta in deltas[1:]:
        for tid in delta.departures:
            if tid in ingested:  # never emitted -> nothing to delete
                schedule.append(("delete", int(tid)))
        schedule.append(("append", delta.segments))
        ingested.update(np.unique(delta.segments.traj_ids).tolist())
        if delta.index in compact_at:
            schedule.append(("compact",))
    return base, schedule


def _tracking_queries(cfg: StandingCampaignConfig, deltas: list,
                      i: int, rng: np.random.Generator
                      ) -> SegmentArray | None:
    """A query trajectory shadowing a real vehicle's mid-stream chunk,
    offset by a fraction of ``d`` — guaranteed to start matching the
    instant that epoch's segments are ingested (every seed exercises
    ``match_added``, not just lucky ones)."""
    epoch = 1 + (i * max(1, len(deltas) - 2)) // max(
        1, cfg.num_subscriptions)
    delta = deltas[min(epoch, len(deltas) - 1)]
    if not delta.active:
        return None
    tid = delta.active[i % len(delta.active)]
    s = delta.segments
    rows = np.flatnonzero(s.traj_ids == tid)
    rows = rows[np.argsort(s.ts[rows])]
    pts = np.vstack([np.column_stack(
        (s.xs[rows], s.ys[rows], s.zs[rows])),
        [[s.xe[rows[-1]], s.ye[rows[-1]], s.ze[rows[-1]]]]])
    times = np.concatenate([s.ts[rows], [s.te[rows[-1]]]])
    direction = rng.normal(size=3)
    direction /= np.linalg.norm(direction) or 1.0
    offset = direction * rng.uniform(0.2, 0.6) * cfg.d
    return SegmentArray.from_trajectories(
        [Trajectory(50_000 + i, times, pts + offset)])


def _make_subscriptions(cfg: StandingCampaignConfig, deltas: list
                        ) -> list[Subscription]:
    """Seeded subscriptions spread across the stream's time axis.

    Most shadow a real vehicle (see :func:`_tracking_queries`); every
    third is an independent random walk that usually matches nothing —
    together the set guarantees both genuine ``match_added`` churn and
    genuine envelope skips on every seed."""
    rng = np.random.default_rng(cfg.seed + 0x57A4D)
    horizon = (cfg.stream_epochs * cfg.fleet.epoch_steps
               * cfg.fleet.dt)
    subs: list[Subscription] = []
    for i in range(cfg.num_subscriptions):
        queries = None
        if i % 3 != 2:
            queries = _tracking_queries(cfg, deltas, i, rng)
        if queries is None:
            t0 = horizon * i / cfg.num_subscriptions
            span_dt = 2.0 * cfg.fleet.dt
            queries = SegmentArray.from_trajectories(make_random_walks(
                num_trajectories=1, num_timesteps=cfg.query_steps,
                box_side=cfg.fleet.box_side,
                step_sigma=cfg.query_step_sigma,
                start_time_range=(t0, t0), dt=span_dt, rng=rng,
                first_traj_id=50_000 + i))
        window = None
        if cfg.window_every and i % cfg.window_every == 1:
            t_lo = float(queries.ts.min())
            span = float(queries.te.max()) - t_lo
            window = (t_lo + 0.1 * span, t_lo + 0.9 * span)
        subs.append(Subscription(
            sub_id=f"sub-{i:02d}", queries=queries, d=cfg.d,
            window=window,
            exclude_same_trajectory=(i == cfg.num_subscriptions - 1)))
    return subs


def _apply(service: QueryService, op: tuple) -> None:
    if op[0] == "append":
        service.ingest(op[1])
    elif op[0] == "delete":
        service.delete_trajectory(op[1])
    else:
        service.compact()


# -- the client model ---------------------------------------------------------


class _Client:
    """A subscriber that only sees the event stream.

    Folds drained ``match_added``/``match_removed`` events into its own
    per-subscription match sets and checks each pair's life-cycle
    (added once, removed at most once, strictly in that order) — entry
    segment ids are never reused, so any violation is a real duplicate
    or loss, not churn."""

    def __init__(self, report: StandingCampaignReport) -> None:
        self.report = report
        self.last_seq = 0
        self.matches: dict[str, dict] = {}
        self._lifecycle: dict[tuple, str] = {}

    def snapshot_initial(self, service: QueryService,
                         subs: list[Subscription]) -> None:
        """Adopt the registration-time answers (state, not events)."""
        for sub in subs:
            poll = service.poll_subscription(sub.sub_id)
            self.matches[sub.sub_id] = {
                (int(q), int(e)): (float(lo), float(hi))
                for q, e, lo, hi in poll["matches"]}
            self.last_seq = max(self.last_seq, poll["last_seq"])
            for key in self.matches[sub.sub_id]:
                self._lifecycle[(sub.sub_id,) + key] = "added"

    def drain(self, service: QueryService) -> None:
        """Fold every event past ``last_seq`` (crash-safe: seqs are
        monotonic across recovery, replayed events keep their old
        seqs and are filtered out here)."""
        for rec in service.standing.events_since(self.last_seq):
            self.last_seq = max(self.last_seq, int(rec["seq"]))
            if rec["kind"] not in MATCH_KINDS:
                continue
            sub_id = rec["sub_id"]
            key = (int(rec["q_id"]), int(rec["e_id"]))
            state = self._lifecycle.get((sub_id,) + key)
            if rec["kind"] == "match_added":
                if state == "added":
                    self._violation(rec, "duplicate add")
                elif state == "removed":
                    self._violation(rec, "re-add after remove")
                else:
                    self._lifecycle[(sub_id,) + key] = "added"
                self.matches.setdefault(sub_id, {})[key] = (
                    float(rec["t_lo"]), float(rec["t_hi"]))
            else:
                if state != "added":
                    self._violation(rec, "remove without add")
                else:
                    self._lifecycle[(sub_id,) + key] = "removed"
                self.matches.get(sub_id, {}).pop(key, None)

    def consistent_with(self, service: QueryService,
                        subs: list[Subscription]) -> bool:
        """Event-folded sets == the service's maintained sets."""
        return all(self.matches.get(sub.sub_id, {})
                   == service.standing.matches(sub.sub_id)
                   for sub in subs)

    def _violation(self, rec: dict, why: str) -> None:
        self.report.event_violations.append(
            {"why": why, "seq": int(rec["seq"]),
             "epoch": int(rec["epoch"]), "kind": rec["kind"],
             "sub_id": rec["sub_id"], "q_id": int(rec["q_id"]),
             "e_id": int(rec["e_id"])})


# -- the campaign -------------------------------------------------------------


def _check_exactness(service: QueryService, subs: list[Subscription],
                     report: StandingCampaignReport,
                     where: str) -> None:
    """Every subscription's maintained answer vs a from-scratch
    ``cpu_scan`` over the snapshot's logical database — byte identity,
    not tolerance."""
    logical = service.current_snapshot().logical()
    engine = CpuScanEngine(logical)
    for sub in subs:
        results, _ = engine.search(
            sub.queries, sub.d,
            exclude_same_trajectory=sub.exclude_same_trajectory)
        want = _result_bytes(sub.apply_window(results))
        got = _result_bytes(service.standing.results(sub.sub_id))
        report.checks += 1
        if want != got:
            report.mismatches.append(
                {"where": where, "sub_id": sub.sub_id})


def _probe(service: QueryService, subs: list[Subscription],
           cfg: StandingCampaignConfig,
           report: StandingCampaignReport, ordinal: int) -> None:
    # A GPU engine, not "auto": the planner would route this small a
    # database to the CPU and the injector would never see an op.
    response = service.submit(SearchRequest(
        queries=subs[ordinal % len(subs)].queries, d=cfg.d,
        method="gpu_spatiotemporal", request_id=f"probe-{ordinal}"))
    report.probes_sent += 1
    report.probes_ok += int(response.ok)


def _absorb_totals(report: StandingCampaignReport,
                   service: QueryService) -> None:
    for key, value in service.standing.totals.items():
        report.standing[key] = report.standing.get(key, 0) + value


def _crash_occurrence(cfg: StandingCampaignConfig,
                      num_ops: int) -> int:
    """Which visit of the kill point fires (see
    :func:`repro.faults.crashes._occurrences` for the rationale)."""
    if cfg.kill_point in ("wal_mid_append", "wal_post_append"):
        return cfg.crash_on_op or max(2, num_ops // 2)
    return 2 if cfg.kill_point == "checkpoint_mid" else 1


def _service_kwargs(cfg: StandingCampaignConfig) -> dict:
    kwargs: dict = {"auto_compact": False,
                    "telemetry": Telemetry(enabled=False)}
    if cfg.faults:
        kwargs["faults"] = FaultInjector(
            [FaultSpec(kind="h2d", rate=cfg.fault_rate),
             FaultSpec(kind="kernel_abort", rate=cfg.fault_rate)],
            seed=cfg.seed)
        kwargs["retry"] = RetryPolicy(max_attempts=4, backoff_s=1e-4)
    return kwargs


def run_standing_campaign(cfg: StandingCampaignConfig | None = None, *,
                          directory: str | Path | None = None
                          ) -> StandingCampaignReport:
    """Run one standing campaign; returns the report.

    ``directory`` hosts the durability directory (a temp dir that is
    cleaned up when None).
    """
    cfg = cfg or StandingCampaignConfig()
    deltas = MovingObjectsWorkload(
        config=cfg.fleet, seed=cfg.seed).epochs(cfg.stream_epochs)
    base, schedule = _materialize(cfg, deltas)
    subs = _make_subscriptions(cfg, deltas)
    report = StandingCampaignReport(config=cfg)
    report.num_ops = len(schedule)
    report.compactions = sum(op[0] == "compact" for op in schedule)
    report.crash_occurrence = _crash_occurrence(cfg, len(schedule))
    policy = DurabilityPolicy(sync=cfg.sync,
                              checkpoint_every=cfg.checkpoint_every)
    owned_tmp = directory is None
    root = Path(directory) if directory is not None \
        else Path(tempfile.mkdtemp(prefix="standing-campaign-"))
    run_dir = root / "durable"
    if run_dir.exists():
        shutil.rmtree(run_dir)
    kill = KillSwitch(cfg.kill_point,
                      occurrence=report.crash_occurrence)
    service = QueryService(base, durability_dir=run_dir,
                           durability=policy, durability_kill=kill,
                           **_service_kwargs(cfg))
    client = _Client(report)
    try:
        for sub in subs:
            service.register_subscription(sub)
        client.snapshot_initial(service, subs)
        _check_exactness(service, subs, report, "registration")
        try:
            for i, op in enumerate(schedule, start=1):
                _apply(service, op)
                client.drain(service)
                _check_exactness(service, subs, report, f"op-{i}")
                if cfg.probe_every and i % cfg.probe_every == 0:
                    _probe(service, subs, cfg, report, i)
        except SimulatedCrash:
            report.crash_fired = True
        if report.crash_fired:
            if cfg.faults and service.faults is not None:
                for kind, n in service.faults.fired_by_kind.items():
                    report.faults_fired[kind] = (
                        report.faults_fired.get(kind, 0) + n)
            # The crashed instance is abandoned as a dead process
            # leaves it; only its lifetime counters are collected.
            _absorb_totals(report, service)
            service = QueryService.recover(
                run_dir, policy=policy,
                **_service_kwargs(cfg))
            rec = service.last_recovery
            report.recovered_epoch = rec.epoch
            # Replayed events keep pre-crash seqs (the client saw
            # them); catch-up events get fresh ones — drain folds
            # exactly the delta the crash interrupted, once.
            client.drain(service)
            _check_exactness(service, subs, report, "recovery")
            # Every mutation bumps the epoch by one, so the recovered
            # epoch is the count of landed ops; resume right after.
            for j, op in enumerate(schedule[rec.epoch:], start=1):
                _apply(service, op)
                report.resumed_ops += 1
                client.drain(service)
                _check_exactness(service, subs, report,
                                 f"resumed-{rec.epoch + j}")
        report.stream_consistent = client.consistent_with(service,
                                                          subs)
        _absorb_totals(report, service)
        if cfg.faults and service.faults is not None:
            for kind, n in service.faults.fired_by_kind.items():
                report.faults_fired[kind] = (
                    report.faults_fired.get(kind, 0) + n)
        service.shutdown()
    except Exception as exc:  # noqa: BLE001 - reported, not raised
        report.error = f"{type(exc).__name__}: {exc}"
    finally:
        if owned_tmp:
            shutil.rmtree(root, ignore_errors=True)
    return report
