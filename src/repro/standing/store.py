"""Durable sidecar for standing-query state.

Standing subscriptions and their maintained match sets must survive
:meth:`QueryService.recover`, but they deliberately do **not** ride the
database WAL: a standing record interleaved there would break the
epoch-continuity check replay enforces (every database record must
produce ``epoch + 1``).  Instead the standing layer keeps its own two
files next to the database's ``wal/`` and ``checkpoints/``:

.. code-block:: text

    standing/
        state.json      # atomic snapshot: subscriptions + match sets
        events.jsonl    # fsync'd append log of match delta events

The discipline mirrors the database's WAL-before-apply rule: match
delta events are appended (and fsync'd) *before* they are applied to
the in-memory match sets, so a crash can lose at most work that was
never acknowledged — never acknowledged work.  ``state.json`` is
written with the same tmp-file + ``os.replace`` + directory-fsync
pattern as checkpoints; a crash mid-save leaves the previous state
intact.  :meth:`StandingStore.checkpoint` folds the event log into the
state and truncates it, bounding replay work exactly like WAL
truncation does for the database.

Recovery reads the state, replays events with ``seq`` greater than the
state's ``last_seq``, and the manager then runs an idempotent catch-up
diff against the recovered snapshot (see
:meth:`~repro.standing.manager.StandingQueryManager.recover`) — the
sidecar can lag the database by at most the one epoch whose standing
processing the crash interrupted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..durability.checkpoint import _fsync_dir

__all__ = ["StandingStore", "StandingStoreError"]

STATE_NAME = "state.json"
EVENTS_NAME = "events.jsonl"
#: state schema version (bump on incompatible layout changes).
FORMAT_VERSION = 1


class StandingStoreError(RuntimeError):
    """A standing sidecar that cannot be loaded."""


class StandingStore:
    """The two-file durable sidecar (see module docstring).

    Parameters
    ----------
    directory:
        The ``standing/`` directory (created if missing).
    sync:
        fsync event appends and state writes (the default; tests that
        only need the format can turn it off for speed).
    """

    def __init__(self, directory: str | Path, *,
                 sync: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.state_path = self.directory / STATE_NAME
        self.events_path = self.directory / EVENTS_NAME
        self.sync = bool(sync)
        #: lifetime write counters (surfaced through manager stats).
        self.events_appended = 0
        self.state_saves = 0

    # -- reads --------------------------------------------------------------------

    def load(self) -> tuple[dict | None, list[dict], int]:
        """``(state, events, torn_lines)``.

        ``state`` is None when no state was ever saved.  Events are
        returned in file order with corrupt/torn lines skipped and
        counted — the final line of an interrupted append is the
        expected casualty, and dropping it is correct because an event
        that never became durable was never acknowledged.
        A corrupt ``state.json`` raises: state writes are atomic, so
        corruption there is damage, not a crash artifact.
        """
        state: dict | None = None
        if self.state_path.exists():
            try:
                state = json.loads(self.state_path.read_text())
            except (json.JSONDecodeError, OSError) as exc:
                raise StandingStoreError(
                    f"standing state {self.state_path} is unreadable: "
                    f"{exc}") from exc
            if state.get("format") != FORMAT_VERSION:
                raise StandingStoreError(
                    f"standing state format "
                    f"{state.get('format')!r} != {FORMAT_VERSION}")
        events: list[dict] = []
        torn = 0
        if self.events_path.exists():
            for line in self.events_path.read_text().splitlines():
                if not line.strip():
                    continue
                try:
                    rec = json.loads(line)
                    if not isinstance(rec, dict) or "seq" not in rec:
                        raise ValueError("not an event record")
                except (json.JSONDecodeError, ValueError):
                    torn += 1
                    continue
                events.append(rec)
        return state, events, torn

    # -- writes -------------------------------------------------------------------

    def append_events(self, records: list[dict]) -> None:
        """Durably append event records (one JSON line each).

        Called *before* the events are applied in memory — the
        WAL-before-apply discipline.
        """
        if not records:
            return
        with open(self.events_path, "a", encoding="utf-8") as fh:
            for rec in records:
                fh.write(json.dumps(rec) + "\n")
            fh.flush()
            if self.sync:
                os.fsync(fh.fileno())
        self.events_appended += len(records)

    def save_state(self, state: dict) -> None:
        """Atomically replace ``state.json`` (tmp + fsync +
        ``os.replace`` + directory fsync)."""
        payload = dict(state)
        payload["format"] = FORMAT_VERSION
        data = json.dumps(payload).encode()
        tmp = self.state_path.with_name(".tmp-" + STATE_NAME)
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            if self.sync:
                os.fsync(fh.fileno())
        os.replace(tmp, self.state_path)
        if self.sync:
            _fsync_dir(self.directory)
        self.state_saves += 1

    def truncate_events(self) -> None:
        """Atomically empty the event log (its content is folded into
        the state by the caller first)."""
        tmp = self.events_path.with_name(".tmp-" + EVENTS_NAME)
        with open(tmp, "wb") as fh:
            fh.flush()
            if self.sync:
                os.fsync(fh.fileno())
        os.replace(tmp, self.events_path)
        if self.sync:
            _fsync_dir(self.directory)

    def checkpoint(self, state: dict) -> None:
        """Fold: save the state, then truncate the event log.

        Crash between the two steps is safe — the events still in the
        log carry ``seq <= state["last_seq"]`` and replay skips them.
        """
        self.save_state(state)
        self.truncate_events()
