"""Delta-aware maintenance of standing queries across ingest epochs.

:class:`StandingQueryManager` owns the registered
:class:`~repro.standing.subscription.Subscription`\\ s and one maintained
match set per subscription.  After every database mutation the owner
calls :meth:`process_epoch` with the new snapshot and the mutation's
delta; the manager decides which subscriptions are *affected*:

* **append** — subscriptions whose
  :class:`~repro.standing.subscription.CandidateEnvelope` intersects
  the appended segments.  New rows can only *add* matches, and only
  matches touching the new rows, so an envelope miss proves the answer
  unchanged.
* **delete** — subscriptions currently holding a match whose entry
  segment belongs to the deleted trajectory.  A delete can only
  *remove* matches, and only those.
* **compact** — nobody.  Compaction preserves
  :meth:`~repro.ingest.versioned.Snapshot.logical` exactly (the
  differential harness pins this), so answers cannot change.

Affected subscriptions are re-evaluated against the pinned snapshot via
the same base-engine + overlay path one-shot queries use; the diff
against the maintained set becomes typed ``match_added`` /
``match_removed`` events, stamped with the epoch and a monotonic
``seq``.  The exactness harness (``tests/test_standing_exactness.py``)
replays workloads asserting the maintained sets stay byte-identical to
from-scratch ``cpu_scan`` evaluation at every epoch — the skip
decision above is load-bearing correctness, not best-effort caching.

With a :class:`~repro.standing.store.StandingStore` attached, events
are durably appended *before* they are applied (WAL discipline) and
:meth:`recover` restores state + replays the event tail + runs an
idempotent catch-up diff, so subscriptions survive service crashes
with no lost or duplicated delta events.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.search import SearchOutcome
from ..engines.base import Deadline
from ..engines.cpu_scan import CpuScanEngine
from ..gpu.costmodel import CpuCostModel
from ..ingest.overlay import overlay_search
from ..ingest.versioned import Snapshot
from ..obs import Telemetry
from .store import StandingStore
from .subscription import (CandidateEnvelope, MatchDict, Subscription,
                           matches_from_results, matches_from_rows,
                           matches_to_rows, results_from_matches)

__all__ = ["EpochReport", "StandingPolicy", "StandingQueryManager"]

#: epoch kinds :meth:`StandingQueryManager.process_epoch` accepts.
EPOCH_KINDS = ("append", "delete", "compact")


@dataclass(frozen=True)
class StandingPolicy:
    """Knobs for the per-epoch maintenance pass.

    Parameters
    ----------
    epoch_deadline_s:
        Wall budget for one epoch's re-evaluations.  Subscriptions not
        reached before it expires are carried over to the next epoch
        (their match sets go stale until then) and the overrun is
        counted — maintenance must never wedge the ingest path.  None
        (default) disables the budget, which is what the exactness
        harness runs with: every epoch fully settled.
    defer_on_pressure:
        When the owner reports queue pressure (the same signal that
        sheds one-shot requests), defer the whole epoch's
        re-evaluations instead of running them.  Deferred work is
        carried over and settled on the next epoch or an explicit
        :meth:`StandingQueryManager.flush`.  Off by default.
    """

    epoch_deadline_s: float | None = None
    defer_on_pressure: bool = False

    def __post_init__(self) -> None:
        if self.epoch_deadline_s is not None \
                and self.epoch_deadline_s <= 0:
            raise ValueError("epoch_deadline_s must be positive")

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"epoch_deadline_s": self.epoch_deadline_s,
                "defer_on_pressure": self.defer_on_pressure}


@dataclass
class EpochReport:
    """What one maintenance pass did (returned to the owner)."""

    epoch: int
    kind: str
    #: registered subscriptions when the pass ran.
    total: int
    #: sub_ids re-evaluated this pass (sorted).
    affected: list[str] = field(default_factory=list)
    #: subscriptions proven unaffected and skipped.
    skipped: int = 0
    #: sub_ids pushed to the next epoch (pressure or deadline).
    deferred: list[str] = field(default_factory=list)
    events_added: int = 0
    events_removed: int = 0
    overran_deadline: bool = False
    wall_seconds: float = 0.0

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"epoch": self.epoch, "kind": self.kind,
                "total": self.total, "affected": list(self.affected),
                "skipped": self.skipped,
                "deferred": list(self.deferred),
                "events_added": self.events_added,
                "events_removed": self.events_removed,
                "overran_deadline": self.overran_deadline,
                "wall_seconds": self.wall_seconds}


class StandingQueryManager:
    """Registered subscriptions + maintained match sets + delta events.

    Parameters
    ----------
    policy:
        :class:`StandingPolicy` (default: fully-settled epochs).
    store:
        Optional :class:`~repro.standing.store.StandingStore`; with one
        attached, registrations and match deltas are durable and
        :meth:`recover` works.
    telemetry:
        The owning service's :class:`~repro.obs.Telemetry` hub; match
        events and per-epoch summaries land in its event log, counters
        in its metrics registry.  None = no telemetry.
    events_maxlen:
        Bound on the in-memory delta-event buffer served by
        :meth:`events_since` / :meth:`poll`.
    """

    def __init__(self, *, policy: StandingPolicy | None = None,
                 store: StandingStore | None = None,
                 telemetry: Telemetry | None = None,
                 events_maxlen: int = 100_000) -> None:
        self.policy = policy or StandingPolicy()
        self.store = store
        self.telemetry = telemetry
        self.subscriptions: dict[str, Subscription] = {}
        self._envelopes: dict[str, CandidateEnvelope] = {}
        self._matches: dict[str, MatchDict] = {}
        self._carryover: set[str] = set()
        self._seq = 0
        self._events_maxlen = int(events_maxlen)
        self._delta_log: list[dict] = []
        self._base_engine_cache: tuple[int, CpuScanEngine] | None = None
        self._cpu_model = CpuCostModel()
        self.last_report: EpochReport | None = None
        #: lifetime counters (mirrored into telemetry when attached).
        self.totals = {
            "epochs": 0, "delta_epochs": 0, "affected": 0,
            "skipped": 0, "events_added": 0, "events_removed": 0,
            "deferred": 0, "deadline_overruns": 0, "recoveries": 0,
            "replayed_events": 0, "caught_up_events": 0,
            "torn_events": 0,
        }

    # -- registration -------------------------------------------------------------

    def register(self, sub: Subscription, snapshot: Snapshot) -> dict:
        """Register a subscription and settle its initial match set
        against ``snapshot``.

        The initial matches are *state*, not deltas: no
        ``match_added`` events fire for them — the event stream reports
        changes after registration, and :meth:`poll` always returns the
        full current set.
        """
        if sub.sub_id in self.subscriptions:
            raise ValueError(f"subscription {sub.sub_id!r} is already "
                             f"registered")
        matches = self._evaluate(sub, snapshot)
        self.subscriptions[sub.sub_id] = sub
        self._envelopes[sub.sub_id] = sub.envelope()
        self._matches[sub.sub_id] = matches
        self._persist_state(snapshot.epoch)
        self._emit_event("subscription_registered", sub_id=sub.sub_id,
                         epoch=snapshot.epoch, matches=len(matches))
        self._set_gauge()
        return {"sub_id": sub.sub_id, "epoch": snapshot.epoch,
                "matches": len(matches)}

    def unregister(self, sub_id: str, *, epoch: int) -> dict:
        """Drop a subscription (its match set and pending carryover go
        with it)."""
        if sub_id not in self.subscriptions:
            raise KeyError(f"no subscription {sub_id!r}")
        matches = len(self._matches.get(sub_id, ()))
        del self.subscriptions[sub_id]
        self._envelopes.pop(sub_id, None)
        self._matches.pop(sub_id, None)
        self._carryover.discard(sub_id)
        self._persist_state(epoch)
        self._emit_event("subscription_unregistered", sub_id=sub_id,
                         epoch=epoch, matches=matches)
        self._set_gauge()
        return {"sub_id": sub_id, "epoch": epoch, "matches": matches}

    # -- reads --------------------------------------------------------------------

    def matches(self, sub_id: str) -> MatchDict:
        """The maintained match set (a copy) for one subscription."""
        return dict(self._matches[sub_id])

    def results(self, sub_id: str):
        """The maintained answer as a canonical
        :class:`~repro.core.result.ResultSet`."""
        return results_from_matches(self._matches[sub_id])

    def events_since(self, seq: int, *, sub_id: str | None = None
                     ) -> list[dict]:
        """Buffered delta events with ``seq`` strictly greater than
        ``seq`` (optionally for one subscription), oldest first."""
        out = [dict(rec) for rec in self._delta_log
               if rec["seq"] > seq
               and (sub_id is None or rec["sub_id"] == sub_id)]
        return out

    def poll(self, sub_id: str, *, since_seq: int = -1) -> dict:
        """One subscription's current answer + its delta events after
        ``since_seq`` — the client-facing read."""
        if sub_id not in self.subscriptions:
            raise KeyError(f"no subscription {sub_id!r}")
        return {
            "sub_id": sub_id,
            "matches": matches_to_rows(self._matches[sub_id]),
            "events": self.events_since(since_seq, sub_id=sub_id),
            "last_seq": self._seq,
            "pending": sub_id in self._carryover,
        }

    @property
    def last_seq(self) -> int:
        return self._seq

    @property
    def pending(self) -> list[str]:
        """sub_ids whose re-evaluation is carried over (stale)."""
        return sorted(self._carryover)

    def stats(self) -> dict:
        """JSON-friendly counters for dashboards and reports."""
        out = {"subscriptions": len(self.subscriptions),
               "pending": len(self._carryover),
               "last_seq": self._seq}
        out.update(self.totals)
        if self.store is not None:
            out["store_events_appended"] = self.store.events_appended
            out["store_state_saves"] = self.store.state_saves
        return out

    # -- the per-epoch pass -------------------------------------------------------

    def process_epoch(self, snapshot: Snapshot, kind: str, *,
                      appended=None, deleted_traj: int | None = None,
                      pressure: bool = False) -> EpochReport:
        """Settle all subscriptions against one new epoch.

        Parameters
        ----------
        snapshot:
            The post-mutation snapshot (``snapshot.epoch`` stamps the
            events).
        kind:
            ``"append"`` / ``"delete"`` / ``"compact"``.
        appended:
            The appended :class:`~repro.core.types.SegmentArray`
            (required for ``"append"``); geometry only — seg_ids need
            not be stamped.
        deleted_traj:
            The tombstoned trajectory id (required for ``"delete"``).
        pressure:
            Owner-reported queue pressure; with
            ``policy.defer_on_pressure`` the pass is deferred whole.
        """
        if kind not in EPOCH_KINDS:
            raise ValueError(f"unknown epoch kind {kind!r}")
        if kind == "append" and appended is None:
            raise ValueError("append epoch needs the appended segments")
        if kind == "delete" and deleted_traj is None:
            raise ValueError("delete epoch needs the deleted traj id")
        wall0 = time.perf_counter()
        affected = self._affected(snapshot, kind, appended,
                                  deleted_traj)
        todo = sorted(set(affected) | self._carryover)
        self._carryover.clear()
        report = EpochReport(epoch=snapshot.epoch, kind=kind,
                             total=len(self.subscriptions),
                             skipped=len(self.subscriptions)
                             - len(todo))
        if pressure and self.policy.defer_on_pressure and todo:
            self._carryover.update(todo)
            report.deferred = todo
            report.wall_seconds = time.perf_counter() - wall0
            self.totals["deferred"] += len(todo)
            self._count("repro_standing_deferred_total", len(todo))
            self._finish_report(report)
            return report
        deadline = (Deadline.after(self.policy.epoch_deadline_s)
                    if self.policy.epoch_deadline_s is not None
                    else None)
        settled: list[str] = []
        for i, sub_id in enumerate(todo):
            if deadline is not None and deadline.expired:
                late = todo[i:]
                self._carryover.update(late)
                report.deferred = late
                report.overran_deadline = True
                self.totals["deadline_overruns"] += 1
                self.totals["deferred"] += len(late)
                self._count("repro_standing_deadline_overruns_total", 1)
                self._count("repro_standing_deferred_total", len(late))
                break
            settled.append(sub_id)
        added, removed = self._settle(settled, snapshot)
        report.affected = settled
        report.events_added = added
        report.events_removed = removed
        report.wall_seconds = time.perf_counter() - wall0
        self.totals["affected"] += len(settled)
        self.totals["skipped"] += report.skipped
        self._count("repro_standing_affected_total", len(settled))
        self._count("repro_standing_skipped_total", report.skipped)
        self._finish_report(report)
        return report

    def flush(self, snapshot: Snapshot) -> EpochReport:
        """Settle all carried-over subscriptions now (no new delta).

        The owner calls this after pressure subsides, before shutdown,
        and whenever a client needs a fully-settled answer under a
        deferring policy.
        """
        wall0 = time.perf_counter()
        todo = sorted(self._carryover)
        self._carryover.clear()
        report = EpochReport(epoch=snapshot.epoch, kind="flush",
                             total=len(self.subscriptions),
                             skipped=len(self.subscriptions)
                             - len(todo))
        added, removed = self._settle(todo, snapshot)
        report.affected = todo
        report.events_added = added
        report.events_removed = removed
        report.wall_seconds = time.perf_counter() - wall0
        self.totals["affected"] += len(todo)
        self._count("repro_standing_affected_total", len(todo))
        self._finish_report(report)
        return report

    # -- durability ---------------------------------------------------------------

    def checkpoint(self, epoch: int) -> None:
        """Fold the durable event log into the durable state (no-op
        without a store)."""
        if self.store is not None:
            self.store.checkpoint(self._state_dict(epoch))

    def recover(self, snapshot: Snapshot) -> dict:
        """Restore subscriptions from the sidecar and settle them
        against the recovered snapshot.

        Three steps: load the last saved state; replay durable events
        with ``seq`` beyond it; then re-evaluate every subscription
        against ``snapshot`` and emit the difference as fresh events.
        The catch-up is idempotent — standing processing runs
        synchronously after each mutation, so the sidecar lags the
        database by at most one epoch, and for an already-settled epoch
        the diff is empty.  Catch-up events are stamped with the
        recovered epoch: the same epoch an uninterrupted run would have
        stamped them with.
        """
        if self.store is None:
            raise RuntimeError("recover() needs a StandingStore")
        if self.subscriptions:
            raise RuntimeError("recover() must run on an empty manager")
        state, events, torn = self.store.load()
        folded_seq = 0
        if state is not None:
            folded_seq = int(state["last_seq"])
            self._seq = folded_seq
            for entry in state["subscriptions"]:
                sub = Subscription.from_dict(entry["sub"])
                self.subscriptions[sub.sub_id] = sub
                self._envelopes[sub.sub_id] = sub.envelope()
                self._matches[sub.sub_id] = matches_from_rows(
                    entry["matches"])
        replayed = 0
        for rec in sorted(events, key=lambda r: int(r["seq"])):
            if int(rec["seq"]) <= folded_seq:
                continue  # already folded into the state
            self._apply_record(rec)
            self._buffer(rec)
            self._seq = max(self._seq, int(rec["seq"]))
            replayed += 1
        # Registration is save_state'd, so a replayed event's sub is
        # always present; an unregistered sub's events were dropped
        # with it.  Discard strays defensively.
        caught_added, caught_removed = self._settle(
            sorted(self.subscriptions), snapshot)
        self.checkpoint(snapshot.epoch)
        self.totals["recoveries"] += 1
        self.totals["replayed_events"] += replayed
        self.totals["caught_up_events"] += caught_added + caught_removed
        self.totals["torn_events"] += torn
        self._count("repro_standing_recoveries_total", 1)
        self._set_gauge()
        summary = {"subscriptions": len(self.subscriptions),
                   "replayed_events": replayed, "torn_events": torn,
                   "caught_up_events": caught_added + caught_removed,
                   "epoch": snapshot.epoch}
        self._emit_event("standing_recovered", **summary)
        return summary

    # -- internals ----------------------------------------------------------------

    def _affected(self, snapshot: Snapshot, kind: str, appended,
                  deleted_traj: int | None) -> list[str]:
        """Which subscriptions could this epoch's delta have changed?"""
        if kind == "compact" or not self.subscriptions:
            return []
        if kind == "append":
            return [sub_id for sub_id in sorted(self.subscriptions)
                    if self._envelopes[sub_id].intersects(appended)]
        doomed = set(
            snapshot.seg_ids_of_trajectory(deleted_traj).tolist())
        return [sub_id for sub_id in sorted(self.subscriptions)
                if any(e in doomed
                       for (_q, e) in self._matches[sub_id])]

    def _base_engine(self, snapshot: Snapshot) -> CpuScanEngine:
        """Brute-force engine over the snapshot's base, cached per base
        version (the base only changes at compaction)."""
        cached = self._base_engine_cache
        if cached is None or cached[0] != snapshot.base_version:
            cached = (snapshot.base_version,
                      CpuScanEngine(snapshot.base))
            self._base_engine_cache = cached
        return cached[1]

    def _evaluate(self, sub: Subscription,
                  snapshot: Snapshot) -> MatchDict:
        """One subscription's exact answer at ``snapshot``: base scan,
        lifted through the overlay (tombstone filter + delta scan),
        clipped to the window."""
        engine = self._base_engine(snapshot)
        results, profile = engine.search(
            sub.queries, sub.d,
            exclude_same_trajectory=sub.exclude_same_trajectory)
        outcome = SearchOutcome(
            results=results, profile=profile,
            modeled=profile.modeled_time(self._cpu_model))
        outcome, _ = overlay_search(
            outcome, snapshot, sub.queries, sub.d,
            exclude_same_trajectory=sub.exclude_same_trajectory,
            cpu_model=self._cpu_model)
        return matches_from_results(sub.apply_window(outcome.results))

    def _settle(self, sub_ids: list[str], snapshot: Snapshot
                ) -> tuple[int, int]:
        """Re-evaluate ``sub_ids`` at ``snapshot``, diff against the
        maintained sets, and emit the deltas.  Returns
        ``(added, removed)`` event counts.

        Write ordering is load-bearing: all records are built first,
        durably appended second, applied in memory third — a crash
        leaves either no trace (catch-up re-derives the diff) or a
        durable record replay will re-apply.  Acknowledged events are
        never lost and never double-applied.
        """
        records: list[dict] = []
        fresh: dict[str, MatchDict] = {}
        wall0 = time.perf_counter()
        for sub_id in sub_ids:
            sub = self.subscriptions[sub_id]
            new = self._evaluate(sub, snapshot)
            fresh[sub_id] = new
            old = self._matches[sub_id]
            for key in sorted(k for k in old if k not in new):
                lo, hi = old[key]
                records.append(self._record("match_removed", sub_id,
                                            snapshot.epoch, key, lo,
                                            hi))
            for key in sorted(k for k in new if k not in old):
                lo, hi = new[key]
                records.append(self._record("match_added", sub_id,
                                            snapshot.epoch, key, lo,
                                            hi))
        if self.store is not None:
            self.store.append_events(records)
        added = removed = 0
        for sub_id, new in fresh.items():
            self._matches[sub_id] = new
        for rec in records:
            self._buffer(rec)
            self._emit_event(rec["kind"],
                             **{k: v for k, v in rec.items()
                                if k != "kind"})
            if rec["kind"] == "match_added":
                added += 1
            else:
                removed += 1
        if sub_ids:
            self._observe("repro_standing_settle_seconds",
                          time.perf_counter() - wall0)
        self.totals["events_added"] += added
        self.totals["events_removed"] += removed
        if added:
            self._count("repro_standing_match_events_total", added,
                        kind="match_added")
        if removed:
            self._count("repro_standing_match_events_total", removed,
                        kind="match_removed")
        return added, removed

    def _record(self, kind: str, sub_id: str, epoch: int,
                key: tuple[int, int], lo: float, hi: float) -> dict:
        self._seq += 1
        return {"seq": self._seq, "epoch": int(epoch), "kind": kind,
                "sub_id": sub_id, "q_id": int(key[0]),
                "e_id": int(key[1]), "t_lo": float(lo),
                "t_hi": float(hi)}

    def _apply_record(self, rec: dict) -> None:
        """Apply one durable event record to the match sets (replay)."""
        matches = self._matches.get(rec["sub_id"])
        if matches is None:
            return
        key = (int(rec["q_id"]), int(rec["e_id"]))
        if rec["kind"] == "match_added":
            matches[key] = (float(rec["t_lo"]), float(rec["t_hi"]))
        elif rec["kind"] == "match_removed":
            matches.pop(key, None)

    def _buffer(self, rec: dict) -> None:
        self._delta_log.append(rec)
        if len(self._delta_log) > self._events_maxlen:
            del self._delta_log[:len(self._delta_log)
                                - self._events_maxlen]

    def _state_dict(self, epoch: int) -> dict:
        return {
            "last_seq": self._seq,
            "epoch": int(epoch),
            "subscriptions": [
                {"sub": self.subscriptions[sub_id].to_dict(),
                 "matches": matches_to_rows(self._matches[sub_id])}
                for sub_id in sorted(self.subscriptions)],
        }

    def _persist_state(self, epoch: int) -> None:
        if self.store is not None:
            self.store.save_state(self._state_dict(epoch))

    def _finish_report(self, report: EpochReport) -> None:
        self.last_report = report
        self.totals["epochs"] += 1
        if report.kind in ("append", "delete"):
            self.totals["delta_epochs"] += 1
        self._observe("repro_standing_epoch_seconds",
                      report.wall_seconds)
        fields = report.to_dict()
        fields["epoch_kind"] = fields.pop("kind")
        self._emit_event("standing_epoch", **fields)

    # -- telemetry plumbing -------------------------------------------------------

    def _emit_event(self, kind: str, **fields) -> None:
        if self.telemetry is not None:
            self.telemetry.events.emit(kind, **fields)

    def _count(self, name: str, amount: float, **labels) -> None:
        if self.telemetry is not None and amount:
            self.telemetry.metrics.counter(name).inc(amount, **labels)

    def _observe(self, name: str, value: float) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.histogram(name).observe(value)

    def _set_gauge(self) -> None:
        if self.telemetry is not None:
            self.telemetry.metrics.gauge(
                "repro_standing_subscriptions").set(
                len(self.subscriptions))
