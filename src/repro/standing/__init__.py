"""Standing queries: continuous distance-threshold subscriptions.

Clients register :class:`Subscription`\\ s against a live
:class:`~repro.service.QueryService`; every ingest epoch the
:class:`StandingQueryManager` re-evaluates only the subscriptions the
epoch's delta could have affected and streams typed ``match_added`` /
``match_removed`` events.  :class:`StandingStore` makes the whole thing
survive crashes; :mod:`repro.standing.campaign` is the seeded
epoch-replay harness that pins incremental answers byte-identical to
from-scratch evaluation.
"""

from .manager import EpochReport, StandingPolicy, StandingQueryManager
from .store import StandingStore, StandingStoreError
from .subscription import (CandidateEnvelope, Subscription,
                           matches_from_results, matches_from_rows,
                           matches_to_rows, results_from_matches)
#: campaign names resolved lazily (PEP 562): the campaign drives
#: repro.service and repro.faults, which both import this package —
#: loading it eagerly here would close the cycle over half-initialized
#: modules whichever side an import starts from.
_CAMPAIGN_NAMES = ("StandingCampaignConfig", "StandingCampaignReport",
                   "run_standing_campaign")


def __getattr__(name: str):
    if name in _CAMPAIGN_NAMES:
        from . import campaign
        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute "
                         f"{name!r}")

__all__ = [
    "CandidateEnvelope", "EpochReport", "StandingCampaignConfig",
    "StandingCampaignReport", "StandingPolicy", "StandingQueryManager",
    "StandingStore", "StandingStoreError", "Subscription",
    "matches_from_results", "matches_from_rows", "matches_to_rows",
    "results_from_matches", "run_standing_campaign",
]
