"""Standing subscriptions: continuous distance-threshold queries.

A :class:`Subscription` is a distance-threshold search a client wants
answered *continuously*: the query segments, the threshold ``d``, an
optional temporal window, and the self-join flag — the same knobs as a
one-shot :class:`~repro.service.SearchRequest`, minus everything that
only makes sense per submission (engine choice, deadline, sharding).

The delta-aware machinery in :mod:`repro.standing.manager` decides per
ingest epoch which subscriptions *could* have changed.  That decision
rides on the :class:`CandidateEnvelope`: the spatial bounding box of the
query segments expanded by ``d``, intersected with the subscription's
temporal extent.  The envelope is a sound over-approximation — a
database segment whose bounding box misses the envelope cannot be
within ``d`` of any query segment at any shared instant, so an append
epoch whose delta misses every envelope provably changes nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import ResultSet
from ..core.types import SegmentArray

__all__ = ["CandidateEnvelope", "Subscription", "matches_from_results",
           "matches_to_rows", "results_from_matches"]

#: one maintained match set: ``(q_id, e_id) -> (t_lo, t_hi)``.
MatchDict = dict[tuple[int, int], tuple[float, float]]


@dataclass(frozen=True)
class CandidateEnvelope:
    """The region of (space × time) that can affect one subscription.

    ``mins``/``maxs`` bound the query segments' endpoints expanded by
    ``d`` per axis (Chebyshev box: Euclidean distance ≤ d implies
    per-axis distance ≤ d, so the box is a superset of the reachable
    region).  ``t_lo``/``t_hi`` bound the query temporal extent
    intersected with the subscription window — a result interval can
    only live where a query segment exists *and* the window admits it.
    """

    mins: tuple[float, float, float]
    maxs: tuple[float, float, float]
    t_lo: float
    t_hi: float

    @property
    def empty(self) -> bool:
        """True when the window and the query extent do not overlap —
        the subscription can never match anything."""
        return self.t_lo > self.t_hi

    def intersects(self, segments: SegmentArray) -> bool:
        """Could *any* of ``segments`` produce a result item for this
        subscription?  Vectorized box-overlap test; False is a proof
        of non-interference, True only a possibility."""
        if self.empty or len(segments) == 0:
            return False
        ok = (segments.ts <= self.t_hi) & (segments.te >= self.t_lo)
        if not ok.any():
            return False
        for lo, hi, axis_min, axis_max in (
                (segments.xs, segments.xe, self.mins[0], self.maxs[0]),
                (segments.ys, segments.ye, self.mins[1], self.maxs[1]),
                (segments.zs, segments.ze, self.mins[2], self.maxs[2])):
            ok &= (np.minimum(lo, hi) <= axis_max) \
                & (np.maximum(lo, hi) >= axis_min)
            if not ok.any():
                return False
        return True

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {"mins": list(self.mins), "maxs": list(self.maxs),
                "t_lo": self.t_lo, "t_hi": self.t_hi}


@dataclass(frozen=True)
class Subscription:
    """One registered continuous query.

    Parameters
    ----------
    sub_id:
        Client-chosen identifier, unique per service.
    queries:
        The query segments, as in :class:`~repro.service.SearchRequest`.
    d:
        Distance threshold.
    window:
        Optional ``(t_lo, t_hi)`` temporal window: only result
        intervals intersecting it are reported, clipped to it.
    exclude_same_trajectory:
        Self-join mode, as in the one-shot API.
    """

    sub_id: str
    queries: SegmentArray
    d: float
    window: tuple[float, float] | None = None
    exclude_same_trajectory: bool = False

    def __post_init__(self) -> None:
        if not self.sub_id:
            raise ValueError("subscription needs a non-empty sub_id")
        if len(self.queries) == 0:
            raise ValueError("subscription needs a non-empty query set")
        if not (self.d >= 0.0):
            raise ValueError(f"distance threshold must be >= 0, "
                             f"got {self.d!r}")
        if self.window is not None:
            lo, hi = self.window
            if not (float(lo) <= float(hi)):
                raise ValueError(f"window must satisfy t_lo <= t_hi, "
                                 f"got {self.window!r}")
            object.__setattr__(self, "window",
                               (float(lo), float(hi)))

    def envelope(self) -> CandidateEnvelope:
        """The subscription's :class:`CandidateEnvelope` (recomputed;
        the manager caches it per registration)."""
        q = self.queries
        mins, maxs = q.spatial_bounds()
        t_lo, t_hi = q.temporal_extent
        if self.window is not None:
            t_lo = max(t_lo, self.window[0])
            t_hi = min(t_hi, self.window[1])
        return CandidateEnvelope(
            mins=tuple(float(v - self.d) for v in mins),
            maxs=tuple(float(v + self.d) for v in maxs),
            t_lo=float(t_lo), t_hi=float(t_hi))

    def apply_window(self, results: ResultSet) -> ResultSet:
        """Clip result intervals to the window; drop items whose
        interval misses it.  Identity when no window is set.

        Both the incremental path and the from-scratch referee apply
        this same function, so windowed answers stay byte-comparable.
        """
        if self.window is None or len(results) == 0:
            return results
        w_lo, w_hi = self.window
        t_lo = np.maximum(results.t_lo, w_lo)
        t_hi = np.minimum(results.t_hi, w_hi)
        keep = np.flatnonzero(t_lo <= t_hi)
        return ResultSet(results.q_ids[keep], results.e_ids[keep],
                         t_lo[keep], t_hi[keep])

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "sub_id": self.sub_id,
            "queries": self.queries.to_dict(),
            "d": float(self.d),
            "window": (list(self.window)
                       if self.window is not None else None),
            "exclude_same_trajectory": bool(
                self.exclude_same_trajectory),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Subscription":
        """Inverse of :meth:`to_dict`."""
        window = payload.get("window")
        return cls(
            sub_id=payload["sub_id"],
            queries=SegmentArray.from_dict(payload["queries"]),
            d=float(payload["d"]),
            window=tuple(window) if window is not None else None,
            exclude_same_trajectory=bool(
                payload.get("exclude_same_trajectory", False)),
        )


# -- match-set plumbing ---------------------------------------------------------
# A maintained answer is a dict keyed by (q_id, e_id) — the shape the
# per-epoch diff wants — converted to a canonical ResultSet whenever a
# client (or the exactness harness) reads it.


def matches_from_results(results: ResultSet) -> MatchDict:
    """Result set → match dict (duplicates collapse; engines dedup
    before this point, so collapsing is a no-op in practice)."""
    canon = results.canonical()
    return {
        (int(q), int(e)): (float(lo), float(hi))
        for q, e, lo, hi in zip(canon.q_ids.tolist(),
                                canon.e_ids.tolist(),
                                canon.t_lo.tolist(),
                                canon.t_hi.tolist())
    }


def results_from_matches(matches: MatchDict) -> ResultSet:
    """Match dict → canonical ResultSet (sorted by ``(q_id, e_id)``)."""
    if not matches:
        return ResultSet()
    rows = sorted(matches.items())
    q = np.fromiter((k[0] for k, _ in rows), dtype=np.int64,
                    count=len(rows))
    e = np.fromiter((k[1] for k, _ in rows), dtype=np.int64,
                    count=len(rows))
    lo = np.fromiter((v[0] for _, v in rows), dtype=np.float64,
                     count=len(rows))
    hi = np.fromiter((v[1] for _, v in rows), dtype=np.float64,
                     count=len(rows))
    return ResultSet(q, e, lo, hi)


def matches_to_rows(matches: MatchDict) -> list[list]:
    """JSON-friendly ``[[q_id, e_id, t_lo, t_hi], ...]`` rows, sorted
    by ``(q_id, e_id)`` for deterministic serialization."""
    return [[k[0], k[1], v[0], v[1]]
            for k, v in sorted(matches.items())]


def matches_from_rows(rows: list) -> MatchDict:
    """Inverse of :func:`matches_to_rows`."""
    return {(int(q), int(e)): (float(lo), float(hi))
            for q, e, lo, hi in rows}
