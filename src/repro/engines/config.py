"""Typed per-engine configuration (the façade's validated surface).

Historically :class:`~repro.core.search.DistanceThresholdSearch` forwarded
an untyped ``**engine_params`` bag to whichever engine class the ``method``
named; a misspelled parameter surfaced as a late ``TypeError`` deep inside
the engine constructor (or worse, was silently absorbed).  This module
replaces that bag with one frozen dataclass per engine:

* every field is a documented tuning knob with its paper default;
* values are validated at construction (positive sizes, known enums);
* unknown or misspelled keys raise :class:`ConfigError` naming the engine
  and suggesting the nearest valid key.

The configs are plain data — JSON-friendly via :meth:`EngineConfig.to_dict`
— so service requests can carry them across process boundaries.
"""

from __future__ import annotations

import difflib
from dataclasses import asdict, dataclass, fields

import numpy as np

__all__ = [
    "CONFIG_REGISTRY",
    "ConfigError",
    "CpuRTreeConfig",
    "CpuScanConfig",
    "EngineConfig",
    "GpuSpatialConfig",
    "GpuSpatioTemporalConfig",
    "GpuTemporalConfig",
    "config_for",
]


class ConfigError(ValueError):
    """An engine received an unknown parameter or an invalid value."""


def _require_positive_int(engine: str, name: str, value) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise ConfigError(
            f"{engine} engine: {name} must be a positive integer, "
            f"got {value!r}")


@dataclass(frozen=True)
class EngineConfig:
    """Base class for the per-engine typed configurations.

    Subclasses declare their engine's tuning knobs as dataclass fields and
    validate values in :meth:`validate` (called from ``__post_init__``).
    """

    #: engine name the config belongs to (class attribute, not a field).
    engine = "engine"

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check field values; raise :class:`ConfigError` on bad ones."""

    # -- conversion -----------------------------------------------------------

    def to_kwargs(self) -> dict:
        """Constructor keyword arguments for the engine class."""
        return asdict(self)

    def to_dict(self) -> dict:
        """JSON-friendly representation (same keys as the fields)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineConfig":
        """Inverse of :meth:`to_dict`; validates like ``from_params``."""
        return cls.from_params(**payload)

    @classmethod
    def valid_keys(cls) -> tuple[str, ...]:
        """The parameter names this engine accepts."""
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_params(cls, **params) -> "EngineConfig":
        """Build a config from loose keyword arguments.

        Unknown keys raise :class:`ConfigError` naming the engine and the
        nearest valid key — the typed replacement for the old silent
        ``**engine_params`` forwarding.
        """
        valid = set(cls.valid_keys())
        for key in params:
            if key not in valid:
                close = difflib.get_close_matches(key, sorted(valid), n=1)
                hint = f"; did you mean {close[0]!r}?" if close else ""
                raise ConfigError(
                    f"{cls.engine} engine: unknown parameter {key!r}{hint} "
                    f"(valid: {sorted(valid)})")
        # Collapse NumPy scalars (np.int64(40), np.float64(0.5)) to the
        # builtin equivalents: values that round-tripped through NumPy
        # must validate and cache-key exactly like plain Python ones.
        params = {k: (v.item() if isinstance(v, np.generic) else v)
                  for k, v in params.items()}
        return cls(**params)


@dataclass(frozen=True)
class GpuTemporalConfig(EngineConfig):
    """Knobs of the GPUTemporal engine (paper §IV-B)."""

    engine = "gpu_temporal"

    num_bins: int = 1000
    result_buffer_items: int = 2_000_000

    def validate(self) -> None:
        _require_positive_int(self.engine, "num_bins", self.num_bins)
        _require_positive_int(self.engine, "result_buffer_items",
                              self.result_buffer_items)


@dataclass(frozen=True)
class GpuSpatioTemporalConfig(EngineConfig):
    """Knobs of the GPUSpatioTemporal engine (paper §IV-C)."""

    engine = "gpu_spatiotemporal"

    num_bins: int = 1000
    num_subbins: int = 4
    strict_subbins: bool = True
    result_buffer_items: int = 2_000_000

    def validate(self) -> None:
        _require_positive_int(self.engine, "num_bins", self.num_bins)
        _require_positive_int(self.engine, "num_subbins", self.num_subbins)
        _require_positive_int(self.engine, "result_buffer_items",
                              self.result_buffer_items)
        if not isinstance(self.strict_subbins, bool):
            raise ConfigError(f"{self.engine} engine: strict_subbins must "
                              f"be a bool, got {self.strict_subbins!r}")


@dataclass(frozen=True)
class GpuSpatialConfig(EngineConfig):
    """Knobs of the GPUSpatial flat-grid engine (paper §IV-A)."""

    engine = "gpu_spatial"

    cells_per_dim: int | tuple[int, int, int] = 50
    candidate_buffer_items: int = 8_000_000
    result_buffer_items: int = 2_000_000

    def validate(self) -> None:
        cells = self.cells_per_dim
        if isinstance(cells, int) and not isinstance(cells, bool):
            ok = cells > 0
        elif isinstance(cells, (tuple, list)) and len(cells) == 3:
            ok = all(isinstance(c, int) and c > 0 for c in cells)
            # Normalize JSON lists back to the tuple the engine expects.
            object.__setattr__(self, "cells_per_dim", tuple(cells))
        else:
            ok = False
        if not ok:
            raise ConfigError(
                f"{self.engine} engine: cells_per_dim must be a positive "
                f"int or a 3-tuple of them, got {self.cells_per_dim!r}")
        _require_positive_int(self.engine, "candidate_buffer_items",
                              self.candidate_buffer_items)
        _require_positive_int(self.engine, "result_buffer_items",
                              self.result_buffer_items)

    def to_dict(self) -> dict:
        payload = super().to_dict()
        if isinstance(payload["cells_per_dim"], tuple):
            payload["cells_per_dim"] = list(payload["cells_per_dim"])
        return payload


@dataclass(frozen=True)
class CpuRTreeConfig(EngineConfig):
    """Knobs of the CPU-RTree baseline engine (paper §V-B)."""

    engine = "cpu_rtree"

    segments_per_mbb: int = 4
    fanout: int = 16
    build_method: str = "guttman"
    temporal_axis: bool = True

    def validate(self) -> None:
        _require_positive_int(self.engine, "segments_per_mbb",
                              self.segments_per_mbb)
        if not isinstance(self.fanout, int) or self.fanout < 2:
            raise ConfigError(f"{self.engine} engine: fanout must be an "
                              f"integer >= 2, got {self.fanout!r}")
        if self.build_method not in ("guttman", "str"):
            raise ConfigError(
                f"{self.engine} engine: build_method must be 'guttman' or "
                f"'str', got {self.build_method!r}")
        if not isinstance(self.temporal_axis, bool):
            raise ConfigError(f"{self.engine} engine: temporal_axis must "
                              f"be a bool, got {self.temporal_axis!r}")


@dataclass(frozen=True)
class CpuScanConfig(EngineConfig):
    """The index-free CPU scan has no tuning knobs."""

    engine = "cpu_scan"


#: engine name -> typed config class (mirrors ``ENGINE_REGISTRY``).
CONFIG_REGISTRY: dict[str, type[EngineConfig]] = {
    "gpu_spatial": GpuSpatialConfig,
    "gpu_temporal": GpuTemporalConfig,
    "gpu_spatiotemporal": GpuSpatioTemporalConfig,
    "cpu_rtree": CpuRTreeConfig,
    "cpu_scan": CpuScanConfig,
}


def config_for(method: str, **params) -> EngineConfig:
    """Build the typed config for ``method`` from loose parameters."""
    if method not in CONFIG_REGISTRY:
        raise ConfigError(f"no config type for engine {method!r}; "
                          f"available: {sorted(CONFIG_REGISTRY)}")
    return CONFIG_REGISTRY[method].from_params(**params)
