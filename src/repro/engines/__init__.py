"""Search engines: the paper's three GPU schemes, the CPU baseline, and
the future-work hybrid."""

from .base import GpuEngineBase, RangeBatch, SearchEngine
from .cpu_rtree import CpuRTreeEngine, tune_segments_per_mbb
from .cpu_scan import CpuScanEngine
from .gpu_spatial import GpuSpatialEngine
from .gpu_spatiotemporal import GpuSpatioTemporalEngine
from .gpu_temporal import GpuTemporalEngine
from .hybrid import HybridEngine, HybridProfile

__all__ = [
    "CpuRTreeEngine", "CpuScanEngine", "GpuEngineBase", "GpuSpatialEngine",
    "GpuSpatioTemporalEngine", "GpuTemporalEngine", "HybridEngine",
    "HybridProfile", "RangeBatch", "SearchEngine",
    "tune_segments_per_mbb",
]
