"""Search engines: the paper's three GPU schemes, the CPU baseline, and
the future-work hybrid — plus their typed configs and retry policy."""

from .base import (Deadline, DeadlineExceededError, GpuEngineBase,
                   KernelInvocationLimitError, NO_RETRY, RangeBatch,
                   ResultBufferOverflowError, RetryPolicy, SearchEngine,
                   current_deadline, deadline_scope)
from .config import (CONFIG_REGISTRY, ConfigError, CpuRTreeConfig,
                     CpuScanConfig, EngineConfig, GpuSpatialConfig,
                     GpuSpatioTemporalConfig, GpuTemporalConfig,
                     config_for)
from .cpu_rtree import CpuRTreeEngine, tune_segments_per_mbb
from .cpu_scan import CpuScanEngine
from .gpu_spatial import GpuSpatialEngine
from .gpu_spatiotemporal import GpuSpatioTemporalEngine
from .gpu_temporal import GpuTemporalEngine
from .hybrid import HybridEngine, HybridProfile
from .registry import (ENGINE_REGISTRY, available, get_engine,
                       register_engine)

__all__ = [
    "CONFIG_REGISTRY", "ConfigError", "CpuRTreeConfig", "CpuRTreeEngine",
    "CpuScanConfig", "CpuScanEngine", "Deadline",
    "DeadlineExceededError", "ENGINE_REGISTRY", "EngineConfig",
    "GpuEngineBase",
    "GpuSpatialConfig", "GpuSpatialEngine", "GpuSpatioTemporalConfig",
    "GpuSpatioTemporalEngine", "GpuTemporalConfig", "GpuTemporalEngine",
    "HybridEngine", "HybridProfile", "KernelInvocationLimitError",
    "NO_RETRY", "RangeBatch", "ResultBufferOverflowError", "RetryPolicy",
    "SearchEngine", "available", "config_for", "current_deadline",
    "deadline_scope", "get_engine", "register_engine",
    "tune_segments_per_mbb",
]
