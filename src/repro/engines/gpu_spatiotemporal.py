"""GPUSpatioTemporal — bins + spatial subbins engine (paper §IV-C, Alg. 3).

Identical host workflow to GPUTemporal (sort ``Q``, compute a schedule,
ship ``Q`` + ``S``), but the schedule points into one of the ``X``/``Y``/
``Z`` subbin id arrays when the query overlaps a single subbin index in
some dimension — giving spatial selectivity for the price of **one extra
indirection** (the kernel reads the entry row id from the subbin array,
then the segment from ``D``).  Queries for which no dimension qualifies
default to the temporal scheme within the same kernel (line 15 of
Algorithm 3); the schedule is pre-sorted by lookup-array selector so warps
see neighbours taking the same branch.

Work accounting: indirect threads charge one *gather* unit per candidate
(the extra id load) on top of the comparison; defaulted threads charge
comparisons only — which is how the cost model exposes the paper's
measured ~12 % indirection overhead (§V-C).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.distance import PairCoefficients
from ..core.ranges import expand_ranges
from ..core.result import ResultSet
from ..core.types import SegmentArray
from ..gpu.kernel import KernelLauncher, LaunchSpec
from ..gpu.profiler import SearchProfile
from ..indexes.spatiotemporal import SpatioTemporalIndex
from .base import (GpuEngineBase, KernelInvocationLimitError,
                   MAX_KERNEL_INVOCATIONS, RangeBatch, RefineCache,
                   ResultBufferOverflowError, first_fit_accept,
                   index_build_phase, refine_ranges)
from .config import GpuSpatioTemporalConfig
from .gpu_temporal import _expand_ranges

__all__ = ["GpuSpatioTemporalEngine"]


class GpuSpatioTemporalEngine(GpuEngineBase):
    """The GPUSpatioTemporal search engine."""

    name = "gpu_spatiotemporal"
    config_type = GpuSpatioTemporalConfig

    def __init__(self, database: SegmentArray, *, num_bins: int = 1000,
                 num_subbins: int = 4, strict_subbins: bool = True,
                 gpu=None, result_buffer_items: int = 2_000_000,
                 retry=None) -> None:
        super().__init__(database, gpu=gpu,
                         result_buffer_items=result_buffer_items,
                         retry=retry)
        with index_build_phase(self.name):
            self.index = SpatioTemporalIndex.build(
                database, num_bins, num_subbins, strict=strict_subbins)
            self.database = self.index.segments
            self._place_database(self.database, "st_db")
            mem = self.gpu.memory
            for name, arr, offs in zip("XYZ", self.index.dim_arrays,
                                       self.index.dim_offsets):
                mem.put(f"subbin_{name}", arr.astype(np.int32))
                mem.put(f"subbin_{name}_offsets", offs)
            mem.put("st_bins", np.stack(
                [self.index.temporal.bin_start,
                 self.index.temporal.bin_end]))
        # Although the schedule is d-dependent (spatial selectivity),
        # every scheduled pair lies inside the query's d-invariant
        # temporal-bin row range — so the superset's coefficients are
        # cacheable across a d-sweep and per-d batches gather from them.
        self._refine_cache = RefineCache()
        self._superset: tuple | None = None

    # -- coefficient superset --------------------------------------------------

    def _superset_coefficients(
            self, q_sorted: SegmentArray, exclude: bool
    ) -> tuple[PairCoefficients | None, np.ndarray, np.ndarray]:
        """Cached coefficients of the full temporal-range pair superset,
        with each query's first database row and pair-position base."""
        cached = self._superset
        if (cached is not None and cached[0] is q_sorted
                and cached[1] == exclude):
            return cached[2], cached[3], cached[4]
        row_lo, row_hi = self.index.temporal.candidate_rows(
            q_sorted.ts, q_sorted.te)
        lens = np.maximum(row_hi - row_lo + 1, 0)
        cstart = np.zeros(len(q_sorted) + 1, dtype=np.int64)
        np.cumsum(lens, out=cstart[1:])
        batch = RangeBatch(
            q_rows=np.arange(len(q_sorted), dtype=np.int64),
            candidate_rows=expand_ranges(row_lo, lens),
            cand_start=cstart)
        coef = self._refine_cache.coefficients_for(
            q_sorted, self.database, batch,
            exclude_same_trajectory=exclude)
        self._superset = (q_sorted, exclude, coef, row_lo, cstart)
        return coef, row_lo, cstart

    # -- search ----------------------------------------------------------------

    def _search_once(self, queries: SegmentArray, d: float, *,
                     exclude_same_trajectory: bool = False
                     ) -> tuple[ResultSet, SearchProfile]:
        wall0 = time.perf_counter()
        self.gpu.reset_counters()
        launcher = KernelLauncher(self.gpu)

        q_sorted = self._sorted_queries(queries)
        schedule = self.index.make_schedule(q_sorted, d)
        self._upload_queries(q_sorted)
        self.gpu.transfers.h2d("schedule", schedule.nbytes)

        # Thread order = schedule order (sorted by array selector).
        sel_all = schedule.array_sel
        lo_all = schedule.ent_min
        hi_all = schedule.ent_max
        qrow_all = schedule.q_rows

        live = np.arange(len(schedule), dtype=np.int64)  # schedule slots
        parts: list[ResultSet] = []
        redo_total = 0
        raw_items = 0
        coef_full, row_lo_t, cstart_full = self._superset_coefficients(
            q_sorted, exclude_same_trajectory)

        for invocation in range(MAX_KERNEL_INVOCATIONS):
            if live.size == 0:
                break
            inputs: tuple[tuple[str, int], ...] = ()
            if invocation > 0:
                inputs = (("redo_query_ids", live.size * 8),)

            sel = sel_all[live]
            lens = np.maximum(hi_all[live] - lo_all[live] + 1, 0)
            cand_start = np.zeros(live.size + 1, dtype=np.int64)
            np.cumsum(lens, out=cand_start[1:])
            cand_rows = np.empty(int(lens.sum()), dtype=np.int64)
            # Indirect threads: gather entry rows through X/Y/Z; defaulted
            # threads (-1): candidate rows are the range itself.
            for dim in range(3):
                pick = sel == dim
                if not np.any(pick):
                    continue
                idx = _expand_ranges(lo_all[live][pick], lens[pick])
                gathered = self.index.dim_arrays[dim][idx]
                _scatter_ranges(cand_rows, cand_start, np.flatnonzero(pick),
                                gathered, lens)
            pick = sel == -1
            if np.any(pick):
                direct = _expand_ranges(lo_all[live][pick], lens[pick])
                _scatter_ranges(cand_rows, cand_start, np.flatnonzero(pick),
                                direct, lens)

            batch = RangeBatch(q_rows=qrow_all[live],
                               candidate_rows=cand_rows,
                               cand_start=cand_start)
            coef = None
            if coef_full is not None:
                q_rep = np.repeat(qrow_all[live], lens)
                coef = coef_full.take(
                    cstart_full[q_rep] + cand_rows - row_lo_t[q_rep])

            def kernel(k, lens=lens, sel=sel, batch=batch, coef=coef):
                hits, pq, pe, plo, phi = refine_ranges(
                    q_sorted, self.database, batch, d,
                    exclude_same_trajectory=exclude_same_trajectory,
                    coefficients=coef)
                k.thread_work[:] = lens
                # The extra indirection of subbin threads.
                k.gather_work[:] = np.where(sel >= 0, lens, 0)
                k.add_atomics(int(hits.sum()))

                accept = first_fit_accept(hits,
                                          self.result_buffer.free_items)
                pair_accept = np.repeat(accept, hits)
                if not self.result_buffer.try_append(
                        pq[pair_accept], pe[pair_accept],
                        plo[pair_accept], phi[pair_accept]):
                    raise RuntimeError("internal: accepted batch overflow")
                return hits, accept

            out = launcher.run(
                LaunchSpec(name=self.name, num_threads=live.size,
                           inputs=inputs), kernel)
            hits, accept = out.value

            qd, ed, lod, hid = self.result_buffer.drain()
            self.gpu.transfers.d2h("result_set", qd.size * 32)
            raw_items += qd.size
            parts.append(ResultSet(q_sorted.seg_ids[qd],
                                   self.database.seg_ids[ed], lod, hid))

            rejected = ~accept
            live = live[rejected]
            redo_total += int(live.size)
            if live.size:
                self.gpu.transfers.d2h("redo_list", live.size * 8)
                worst = int(hits[rejected].max())
                if worst > self.result_buffer.capacity_items:
                    raise ResultBufferOverflowError(
                        "result buffer too small for a single query "
                        f"({worst} items > "
                        f"{self.result_buffer.capacity_items} capacity); "
                        "increase result_buffer_items or let the retry "
                        "policy grow it", required_items=worst)
                if invocation == MAX_KERNEL_INVOCATIONS - 1:
                    raise KernelInvocationLimitError(
                        "kernel re-invocation limit reached; increase the "
                        "result buffer capacity",
                        required_items=self.result_buffer.capacity_items
                        * 2)

        raw = ResultSet.from_parts(parts)
        final = raw.deduplicated()
        profile = SearchProfile.capture(
            self.name, self.gpu, num_queries=len(queries),
            schedule_items=len(queries),
            redo_queries=redo_total,
            defaulted_queries=schedule.num_defaulted,
            raw_result_items=raw_items,
            result_items=len(final),
            index_bytes=self.index.nbytes(),
            wall_seconds=time.perf_counter() - wall0,
        )
        return final, profile


def _scatter_ranges(out: np.ndarray, cand_start: np.ndarray,
                    thread_ids: np.ndarray, values: np.ndarray,
                    lens: np.ndarray) -> None:
    """Write each selected thread's candidate list into its slot of the
    flat candidate array."""
    if values.size == 0:
        return
    dest = _expand_ranges(cand_start[thread_ids], lens[thread_ids])
    out[dest] = values
