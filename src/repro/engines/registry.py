"""The engine registry, behind typed accessors.

:func:`available` and :func:`get_engine` are the supported way to
enumerate and resolve engines by name; :func:`register_engine` is the
extension point for third-party engines.  The historical
``ENGINE_REGISTRY`` mapping survives as a read-only view that emits a
``DeprecationWarning`` on every read and rejects mutation.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterator, Mapping

from .base import SearchEngine
from .cpu_rtree import CpuRTreeEngine
from .cpu_scan import CpuScanEngine
from .gpu_spatial import GpuSpatialEngine
from .gpu_spatiotemporal import GpuSpatioTemporalEngine
from .gpu_temporal import GpuTemporalEngine

__all__ = ["ENGINE_REGISTRY", "available", "get_engine",
           "register_engine"]

#: The canonical name -> class mapping; mutate only via
#: :func:`register_engine`.
_REGISTRY: dict[str, type[SearchEngine]] = {}


def available() -> tuple[str, ...]:
    """The registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_engine(name: str) -> type[SearchEngine]:
    """The engine class registered under ``name``.

    Raises ``KeyError`` naming the valid choices when ``name`` is
    unknown.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r}; available: "
            f"{', '.join(available())}") from None


def register_engine(name: str):
    """Class decorator registering a :class:`SearchEngine` under ``name``.

    The supported extension point for custom engines::

        @register_engine("my_engine")
        class MyEngine(SearchEngine):
            name = "my_engine"
            def search(self, queries, d, *, exclude_same_trajectory=False):
                ...

    Returns the class unchanged, so it stacks with other decorators.
    """
    if not isinstance(name, str) or not name:
        raise ValueError("engine name must be a non-empty string")

    def decorator(cls: type[SearchEngine]) -> type[SearchEngine]:
        if not (isinstance(cls, type) and issubclass(cls, SearchEngine)):
            raise TypeError(
                f"@register_engine({name!r}) expects a SearchEngine "
                f"subclass, got {cls!r}")
        _REGISTRY[name] = cls
        return cls

    return decorator


class _DeprecatedRegistryView(Mapping):
    """Read-only compatibility view over the engine registry.

    Every read warns, steering callers to :func:`available` /
    :func:`get_engine`; writes raise, steering them to
    :func:`register_engine`.
    """

    def __init__(self, registry: dict[str, type[SearchEngine]]) -> None:
        self._registry = registry

    @staticmethod
    def _warn() -> None:
        warnings.warn(
            "ENGINE_REGISTRY is deprecated; use "
            "repro.engines.available() / repro.engines.get_engine()",
            DeprecationWarning, stacklevel=3)

    def __getitem__(self, key: str) -> type[SearchEngine]:
        self._warn()
        return self._registry[key]

    def __iter__(self) -> Iterator[str]:
        self._warn()
        return iter(tuple(self._registry))

    def __len__(self) -> int:
        self._warn()
        return len(self._registry)

    def __contains__(self, key: object) -> bool:
        self._warn()
        return key in self._registry

    def __setitem__(self, key: str, value: type[SearchEngine]) -> None:
        raise TypeError(
            "ENGINE_REGISTRY is read-only; register engines with the "
            "@register_engine(name) decorator")

    def __delitem__(self, key: str) -> None:
        raise TypeError(
            "ENGINE_REGISTRY is read-only; it cannot be unregistered "
            "from")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ENGINE_REGISTRY(view of {sorted(self._registry)})"


#: Deprecated read-only view; use :func:`available` / :func:`get_engine`.
ENGINE_REGISTRY = _DeprecatedRegistryView(_REGISTRY)


register_engine("gpu_spatial")(GpuSpatialEngine)
register_engine("gpu_temporal")(GpuTemporalEngine)
register_engine("gpu_spatiotemporal")(GpuSpatioTemporalEngine)
register_engine("cpu_rtree")(CpuRTreeEngine)
register_engine("cpu_scan")(CpuScanEngine)
