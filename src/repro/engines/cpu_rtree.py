"""CPU-RTree — the multithreaded CPU baseline (paper §V-B).

An in-memory R-tree over 4-D MBBs covering ``r`` consecutive segments per
trajectory, searched by one thread per query segment (OpenMP in the paper,
6 threads at ~80 % parallel efficiency on the Xeon W3690).  The search is
the classic two-phase filter-and-refine: traverse the tree with the
query's MBB expanded by ``d`` (spatial axes only), then refine every
segment of every overlapping leaf MBB.

The key response-time driver the paper highlights: as ``d`` grows, the
expanded query boxes overlap more of the tree — candidates grow roughly
with the swept volume — so CPU-RTree's response time *rises with d*, while
GPUTemporal's candidate count does not.  That asymmetry creates the
crossover the paper's Figures 5 and 6 report.

``r`` trades index search time against refinement volume; the paper sweeps
it and reports only the best value per experiment
(:func:`tune_segments_per_mbb` reproduces that protocol).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.execmode import current_execution_mode
from ..core.result import ResultSet
from ..core.types import SegmentArray
from ..gpu.costmodel import CpuCostModel
from ..gpu.profiler import CpuSearchProfile
from ..indexes.rtree import RTree
from ..obs.telemetry import current as current_telemetry
from .base import (RangeBatch, SearchEngine, index_build_phase,
                   refine_ranges)
from .config import CpuRTreeConfig

__all__ = ["CpuRTreeEngine", "tune_segments_per_mbb"]


class CpuRTreeEngine(SearchEngine):
    """The CPU-only baseline engine."""

    name = "cpu_rtree"
    config_type = CpuRTreeConfig

    def __init__(self, database: SegmentArray, *,
                 segments_per_mbb: int = 4, fanout: int = 16,
                 build_method: str = "guttman",
                 temporal_axis: bool = True) -> None:
        if len(database) == 0:
            raise ValueError("database must not be empty")
        with index_build_phase(self.name):
            self.index = RTree.build(database,
                                     segments_per_mbb=segments_per_mbb,
                                     fanout=fanout, method=build_method,
                                     temporal_axis=temporal_axis)
            self.database = self.index.segments

    def search(self, queries: SegmentArray, d: float, *,
               exclude_same_trajectory: bool = False
               ) -> tuple[ResultSet, CpuSearchProfile]:
        with current_telemetry().span(
                "engine.search", engine=self.name,
                num_queries=len(queries)) as span:
            result, profile = self._search_impl(
                queries, d,
                exclude_same_trajectory=exclude_same_trajectory)
            span.set_attributes(node_visits=profile.node_visits,
                                comparisons=profile.comparisons,
                                result_items=profile.result_items)
            return result, profile

    def _search_impl(self, queries: SegmentArray, d: float, *,
                     exclude_same_trajectory: bool = False
                     ) -> tuple[ResultSet, CpuSearchProfile]:
        wall0 = time.perf_counter()
        if current_execution_mode() == "perthread":
            candidates, node_visits = self.index.query_candidates(
                queries, d)
            lens = np.array([c.size for c in candidates], dtype=np.int64)
            cand_start = np.zeros(len(queries) + 1, dtype=np.int64)
            np.cumsum(lens, out=cand_start[1:])
            cand_rows = (np.concatenate(candidates) if len(queries)
                         else np.zeros(0, dtype=np.int64))
        else:
            cand_rows, cand_start, node_visits = \
                self.index.query_candidates_flat(queries, d)
            lens = np.diff(cand_start)
        batch = RangeBatch(q_rows=np.arange(len(queries), dtype=np.int64),
                           candidate_rows=cand_rows, cand_start=cand_start)
        hits, pq, pe, plo, phi = refine_ranges(
            queries, self.database, batch, d,
            exclude_same_trajectory=exclude_same_trajectory)

        result = ResultSet(queries.seg_ids[pq], self.database.seg_ids[pe],
                           plo, phi).deduplicated()
        profile = CpuSearchProfile(
            engine=self.name,
            num_queries=len(queries),
            node_visits=int(node_visits.sum()),
            comparisons=int(lens.sum()),
            result_items=len(result),
            index_bytes=self.index.nbytes(),
            wall_seconds=time.perf_counter() - wall0,
        )
        return result, profile


def tune_segments_per_mbb(
    database: SegmentArray,
    queries: SegmentArray,
    d: float,
    *,
    r_values: tuple[int, ...] = (1, 2, 4, 8, 16),
    model: CpuCostModel | None = None,
) -> tuple[int, dict[int, float]]:
    """Reproduce the paper's protocol of sweeping ``r`` and keeping the
    best: returns ``(best_r, {r: modeled_seconds})``.

    The sweep is honest about both sides of the trade-off: small ``r``
    means deep traversals (node visits dominate), large ``r`` means fat
    leaves (refinement dominates).
    """
    model = model or CpuCostModel()
    times: dict[int, float] = {}
    for r in r_values:
        engine = CpuRTreeEngine(database, segments_per_mbb=r)
        _, profile = engine.search(queries, d)
        times[r] = profile.modeled_time(model).total
    best = min(times, key=times.__getitem__)
    return best, times
