"""Hybrid CPU+GPU engine — the paper's stated future direction (§VI).

"investigating hybrid implementations of the distance threshold search
that uses the CPU and the GPU concurrently."

The query set is split: a fraction goes to a GPU engine, the remainder to
the CPU R-tree, both running concurrently.  Response time is the maximum
of the two sides, so the optimal split equalizes their modeled times.
:meth:`HybridEngine.balanced_split` estimates that split from a pilot run
on a query sample, then :meth:`search` executes the full workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.result import ResultSet
from ..core.types import SegmentArray
from ..gpu.costmodel import CostBreakdown, CpuCostModel, GpuCostModel
from ..gpu.profiler import CpuSearchProfile, SearchProfile
from .base import GpuEngineBase, SearchEngine
from .cpu_rtree import CpuRTreeEngine

__all__ = ["HybridEngine", "HybridProfile"]


@dataclass
class HybridProfile:
    """Joint execution record: both sides ran concurrently."""

    engine: str
    num_queries: int
    gpu_fraction: float
    gpu_profile: SearchProfile
    cpu_profile: CpuSearchProfile
    wall_seconds: float = 0.0

    def modeled_time(self, gpu_model: GpuCostModel,
                     cpu_model: CpuCostModel) -> CostBreakdown:
        """Concurrent execution: the slower side defines response time."""
        t_gpu = self.gpu_profile.modeled_time(gpu_model)
        t_cpu = self.cpu_profile.modeled_time(cpu_model)
        return t_gpu if t_gpu.total >= t_cpu.total else t_cpu

    @property
    def result_items(self) -> int:
        return (self.gpu_profile.result_items
                + self.cpu_profile.result_items)


class HybridEngine(SearchEngine):
    """Run part of ``Q`` on a GPU engine and the rest on CPU-RTree.

    ``gpu_fraction`` is the share of queries (by count, after temporal
    sorting) handed to the GPU side.  Queries are dealt round-robin so both
    sides see the same temporal mix — handing the GPU a contiguous time
    slice would skew its temporal bins' selectivity.
    """

    name = "hybrid"

    def __init__(self, gpu_engine: GpuEngineBase,
                 cpu_engine: CpuRTreeEngine, *,
                 gpu_fraction: float = 0.5) -> None:
        if not 0.0 <= gpu_fraction <= 1.0:
            raise ValueError("gpu_fraction must be in [0, 1]")
        self.gpu_engine = gpu_engine
        self.cpu_engine = cpu_engine
        self.gpu_fraction = gpu_fraction

    @staticmethod
    def _split(queries: SegmentArray, gpu_fraction: float
               ) -> tuple[np.ndarray, np.ndarray]:
        n = len(queries)
        n_gpu = int(round(n * gpu_fraction))
        # Round-robin deal in t_start order for an unbiased temporal mix.
        order = np.argsort(queries.ts, kind="stable")
        stride = max(1, int(round(n / max(n_gpu, 1)))) if n_gpu else n + 1
        take_gpu = np.zeros(n, dtype=bool)
        take_gpu[order[::stride][:n_gpu]] = True
        # Top up if rounding under-filled the GPU share.
        deficit = n_gpu - int(take_gpu.sum())
        if deficit > 0:
            pool = order[~take_gpu[order]]
            take_gpu[pool[:deficit]] = True
        return np.flatnonzero(take_gpu), np.flatnonzero(~take_gpu)

    def search(self, queries: SegmentArray, d: float, *,
               exclude_same_trajectory: bool = False
               ) -> tuple[ResultSet, HybridProfile]:
        wall0 = time.perf_counter()
        gpu_idx, cpu_idx = self._split(queries, self.gpu_fraction)
        gpu_q = queries.take(gpu_idx)
        cpu_q = queries.take(cpu_idx)

        if len(gpu_q):
            gpu_res, gpu_prof = self.gpu_engine.search(
                gpu_q, d, exclude_same_trajectory=exclude_same_trajectory)
        else:
            gpu_res = ResultSet()
            gpu_prof = SearchProfile(engine=self.gpu_engine.name,
                                     num_queries=0)
        if len(cpu_q):
            cpu_res, cpu_prof = self.cpu_engine.search(
                cpu_q, d, exclude_same_trajectory=exclude_same_trajectory)
        else:
            cpu_res = ResultSet()
            cpu_prof = CpuSearchProfile(engine=self.cpu_engine.name,
                                        num_queries=0)

        result = ResultSet.from_parts([gpu_res, cpu_res]).deduplicated()
        profile = HybridProfile(
            engine=self.name,
            num_queries=len(queries),
            gpu_fraction=self.gpu_fraction,
            gpu_profile=gpu_prof,
            cpu_profile=cpu_prof,
            wall_seconds=time.perf_counter() - wall0,
        )
        return result, profile

    # -- split tuning -------------------------------------------------------------

    @classmethod
    def balanced_split(
        cls,
        gpu_engine: GpuEngineBase,
        cpu_engine: CpuRTreeEngine,
        queries: SegmentArray,
        d: float,
        *,
        pilot_fraction: float = 0.1,
        gpu_model: GpuCostModel | None = None,
        cpu_model: CpuCostModel | None = None,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Estimate the GPU share that equalizes both sides' times.

        A pilot sample of the queries runs on both engines; with per-query
        throughputs ``1/t_gpu`` and ``1/t_cpu``, concurrent completion
        requires ``f * t_gpu = (1 - f) * t_cpu``, i.e.
        ``f = t_cpu / (t_gpu + t_cpu)``.
        """
        gpu_model = gpu_model or GpuCostModel()
        cpu_model = cpu_model or CpuCostModel()
        rng = rng or np.random.default_rng(0)
        n_pilot = max(1, int(len(queries) * pilot_fraction))
        pilot = queries.take(np.sort(rng.choice(len(queries), size=n_pilot,
                                                replace=False)))
        _, gp = gpu_engine.search(pilot, d)
        _, cp = cpu_engine.search(pilot, d)
        t_gpu = gp.modeled_time(gpu_model).total
        t_cpu = cp.modeled_time(cpu_model).total
        if t_gpu + t_cpu == 0:
            return 0.5
        return float(t_cpu / (t_gpu + t_cpu))
