"""Common machinery shared by the three GPU search engines.

All engines implement the same contract: ``search(queries, d)`` returns a
``(ResultSet, profile)`` pair — the exact result set plus the execution
record the cost model turns into modeled response time.

The GPU engines share the paper's execution skeleton:

* one query segment per GPU thread (load balancing, §IV);
* a fixed-capacity device result buffer filled through atomic appends;
* when the buffer cannot hold everything, the query set is processed
  *incrementally*: queries that could not publish their results are
  re-processed by a follow-up kernel invocation after the host drains the
  buffer (§V-D/V-E) — the engines implement this loop once, here.

Within one invocation the model completes queries in thread-id order
(first-fit): a deterministic idealization of the hardware's nondeterministic
atomic interleaving.  A query's results are published all-or-nothing so a
re-processed query never double-reports.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

import numpy as np

from ..core.distance import compare_pairs
from ..core.result import ResultSet
from ..core.types import SegmentArray
from ..gpu.atomics import AtomicResultBuffer
from ..gpu.device import VirtualGPU
from ..gpu.profiler import CpuSearchProfile, SearchProfile

__all__ = ["SearchEngine", "GpuEngineBase", "RangeBatch",
           "refine_ranges", "first_fit_accept"]

#: Upper bound on candidate pairs refined per vectorized chunk; keeps peak
#: host memory flat independent of the workload.
MAX_PAIRS_PER_CHUNK = 1 << 21

#: Bytes per query segment shipped host->device (8 coords + 2 ids, f64/i64).
QUERY_ITEM_BYTES = 80

#: Safety valve: a pathological configuration (e.g. a buffer smaller than a
#: single query's output) would otherwise loop forever.
MAX_KERNEL_INVOCATIONS = 256


class SearchEngine(abc.ABC):
    """A distance-threshold search engine bound to a database."""

    name: str = "engine"

    @abc.abstractmethod
    def search(self, queries: SegmentArray, d: float, *,
               exclude_same_trajectory: bool = False
               ) -> tuple[ResultSet, SearchProfile | CpuSearchProfile]:
        """Run the search; returns the result set and execution profile."""


@dataclass
class RangeBatch:
    """Per-thread candidate specifications for one kernel invocation.

    ``q_rows[i]`` is the query row thread ``i`` handles; its candidates are
    ``candidate_rows[cand_start[i] : cand_start[i+1]]`` (row indices into
    the engine's device-resident database ordering).
    """

    q_rows: np.ndarray
    candidate_rows: np.ndarray
    cand_start: np.ndarray

    def __post_init__(self) -> None:
        if self.cand_start.shape != (self.q_rows.shape[0] + 1,):
            raise ValueError("cand_start must have len(q_rows)+1 entries")

    @property
    def num_threads(self) -> int:
        return int(self.q_rows.shape[0])

    def lengths(self) -> np.ndarray:
        return np.diff(self.cand_start)


def refine_ranges(
    queries: SegmentArray,
    database: SegmentArray,
    batch: RangeBatch,
    d: float,
    *,
    exclude_same_trajectory: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Refine every (thread, candidate) pair of a batch, chunked.

    Returns ``(hits_per_thread, q_rows, e_rows, t_lo, t_hi)`` where the
    last four arrays list the surviving pairs in thread order — the order
    in which threads would publish to the result buffer.
    """
    lens = batch.lengths()
    nthreads = batch.num_threads
    hits_per_thread = np.zeros(nthreads, dtype=np.int64)
    out_q, out_e, out_lo, out_hi = [], [], [], []

    t = 0
    while t < nthreads:
        # Take threads until the chunk pair budget is reached.
        t_end = t
        pairs = 0
        while t_end < nthreads and (pairs == 0
                                    or pairs + lens[t_end]
                                    <= MAX_PAIRS_PER_CHUNK):
            pairs += lens[t_end]
            t_end += 1
        span = slice(batch.cand_start[t], batch.cand_start[t_end])
        e_idx = batch.candidate_rows[span]
        q_idx = np.repeat(batch.q_rows[t:t_end], lens[t:t_end])
        local_thread = np.repeat(np.arange(t, t_end), lens[t:t_end])
        res = compare_pairs(queries, database, q_idx, e_idx, d,
                            exclude_same_trajectory=exclude_same_trajectory)
        if res.num_hits:
            hit = res.mask
            np.add.at(hits_per_thread, local_thread[hit], 1)
            out_q.append(q_idx[hit])
            out_e.append(e_idx[hit])
            out_lo.append(res.t_lo[hit])
            out_hi.append(res.t_hi[hit])
        t = t_end

    if out_q:
        return (hits_per_thread, np.concatenate(out_q),
                np.concatenate(out_e), np.concatenate(out_lo),
                np.concatenate(out_hi))
    z = np.zeros(0)
    zi = np.zeros(0, dtype=np.int64)
    return hits_per_thread, zi, zi.copy(), z, z.copy()


def first_fit_accept(hits_per_thread: np.ndarray,
                     free_items: int) -> np.ndarray:
    """Which threads publish their results this invocation.

    Threads complete in id order; a thread's batch is all-or-nothing.
    Threads with zero hits always complete (their empty append trivially
    succeeds).  Returns a boolean accept mask.
    """
    cum = np.cumsum(hits_per_thread)
    fits = cum <= free_items
    # After the first non-fitting thread, later non-empty threads are
    # rejected even if they would individually fit: the tail counter has
    # already passed capacity in the deterministic in-order model.
    if np.all(fits):
        return np.ones_like(fits)
    first_reject = int(np.argmin(fits))
    accept = np.zeros_like(fits)
    accept[:first_reject] = True
    accept |= hits_per_thread == 0
    return accept


class GpuEngineBase(SearchEngine):
    """Shared state and the incremental-processing loop for GPU engines.

    Subclasses implement :meth:`_plan_invocation`, producing the candidate
    :class:`RangeBatch` (plus per-thread gather-work and overflow
    information) for a given list of live query rows.
    """

    def __init__(self, database: SegmentArray, *,
                 gpu: VirtualGPU | None = None,
                 result_buffer_items: int = 2_000_000) -> None:
        if len(database) == 0:
            raise ValueError("database must not be empty")
        self.gpu = gpu or VirtualGPU()
        self.result_buffer = AtomicResultBuffer(result_buffer_items)
        self.database = database  # subclass may replace with sorted order

    # -- helpers for subclasses ------------------------------------------------------

    def _place_database(self, sorted_db: SegmentArray, label: str) -> None:
        """Store the (re-ordered) database in device global memory.

        Offline step: the transfer is *not* charged to response time, per
        the paper's methodology (§V-B), but it must fit in device memory.
        """
        mem = self.gpu.memory
        mem.put(f"{label}.coords", np.stack(
            [sorted_db.xs, sorted_db.ys, sorted_db.zs, sorted_db.ts,
             sorted_db.xe, sorted_db.ye, sorted_db.ze, sorted_db.te]))
        mem.put(f"{label}.ids", np.stack(
            [sorted_db.traj_ids, sorted_db.seg_ids]))
        if "result_buffer" not in mem:
            mem.alloc("result_buffer",
                      (self.result_buffer.capacity_items, 4))

    def _upload_queries(self, queries: SegmentArray) -> None:
        """Charge the h2d transfer of the query set (it fits on the GPU by
        assumption, §III) at search time."""
        nbytes = len(queries) * QUERY_ITEM_BYTES
        self.gpu.transfers.h2d("query_set", nbytes)
