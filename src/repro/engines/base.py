"""Common machinery shared by the three GPU search engines.

All engines implement the same contract: ``search(queries, d)`` returns a
``(ResultSet, profile)`` pair — the exact result set plus the execution
record the cost model turns into modeled response time.

The GPU engines share the paper's execution skeleton:

* one query segment per GPU thread (load balancing, §IV);
* a fixed-capacity device result buffer filled through atomic appends;
* when the buffer cannot hold everything, the query set is processed
  *incrementally*: queries that could not publish their results are
  re-processed by a follow-up kernel invocation after the host drains the
  buffer (§V-D/V-E) — the engines implement this loop once, here.

Within one invocation the model completes queries in thread-id order
(first-fit): a deterministic idealization of the hardware's nondeterministic
atomic interleaving.  A query's results are published all-or-nothing so a
re-processed query never double-reports.
"""

from __future__ import annotations

import abc
import random
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

import numpy as np

from ..core.distance import (PairCoefficients, compare_pairs,
                             pair_coefficients, solve_intervals)
from ..core.execmode import current_execution_mode
from ..core.result import ResultSet
from ..core.types import SegmentArray
from ..gpu.atomics import AtomicResultBuffer
from ..gpu.device import VirtualGPU
from ..gpu.profiler import CpuSearchProfile, SearchProfile
from ..obs.telemetry import current as current_telemetry
from .config import EngineConfig

__all__ = ["SearchEngine", "GpuEngineBase", "NO_RETRY", "RangeBatch",
           "RefineCache", "RetryPolicy", "ResultBufferOverflowError",
           "KernelInvocationLimitError", "Deadline",
           "DeadlineExceededError", "current_deadline", "deadline_scope",
           "refine_ranges", "first_fit_accept", "index_build_phase"]


@contextmanager
def index_build_phase(engine_name: str):
    """Observe one offline index build: a span plus a wall-seconds
    histogram sample, both no-ops without ambient telemetry."""
    telemetry = current_telemetry()
    wall0 = time.perf_counter()
    with telemetry.span("index.build", engine=engine_name):
        yield
    telemetry.metrics.histogram(
        "repro_index_build_seconds",
        "offline index build wall seconds").observe(
        time.perf_counter() - wall0, engine=engine_name)

#: Upper bound on candidate pairs refined per vectorized chunk; keeps peak
#: host memory flat independent of the workload.
MAX_PAIRS_PER_CHUNK = 1 << 21

#: Bytes per query segment shipped host->device (8 coords + 2 ids, f64/i64).
QUERY_ITEM_BYTES = 80

#: Safety valve: a pathological configuration (e.g. a buffer smaller than a
#: single query's output) would otherwise loop forever.
MAX_KERNEL_INVOCATIONS = 256


class ResultBufferOverflowError(RuntimeError):
    """A single query's output cannot fit the device result buffer.

    Without intervention the incremental loop would burn invocations
    without progress; the engine surfaces the condition immediately.
    ``required_items`` is the smallest buffer capacity that would let the
    stuck query publish — the retry policy grows the buffer to at least
    that size before trying again.
    """

    def __init__(self, message: str, *, required_items: int) -> None:
        super().__init__(message)
        self.required_items = int(required_items)


class KernelInvocationLimitError(RuntimeError):
    """The incremental loop hit ``MAX_KERNEL_INVOCATIONS``.

    Reaching the limit means the result buffer is far too small for the
    workload (every invocation drains only a sliver of the output); the
    retry policy treats it like an overflow and grows the buffer.
    """

    def __init__(self, message: str, *, required_items: int) -> None:
        super().__init__(message)
        self.required_items = int(required_items)


class DeadlineExceededError(RuntimeError):
    """A request's deadline budget ran out before the work completed."""


@dataclass(frozen=True)
class Deadline:
    """A wall-clock budget propagated from the service into retry loops.

    The service opens a :func:`deadline_scope` around a request; any
    retry loop underneath consults :func:`current_deadline` instead of
    keeping a private wall deadline, so one request-level budget bounds
    the whole ladder of attempts (engine retries *and* failover hops).
    """

    expires_at: float  # time.monotonic() instant

    @classmethod
    def after(cls, budget_s: float) -> "Deadline":
        return cls(time.monotonic() + budget_s)

    def remaining_s(self) -> float:
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining_s() <= 0.0

    def check(self, what: str = "operation") -> None:
        if self.expired:
            raise DeadlineExceededError(
                f"deadline exceeded before {what}")


#: ambient request deadline; None means "no budget in force".
_DEADLINE: ContextVar[Deadline | None] = ContextVar(
    "repro_request_deadline", default=None)


def current_deadline() -> Deadline | None:
    """The ambient request :class:`Deadline`, if one is in force."""
    return _DEADLINE.get()


@contextmanager
def deadline_scope(deadline: Deadline | None):
    """Make ``deadline`` the ambient budget for the enclosed block."""
    token = _DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _DEADLINE.reset(token)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry policy for the incremental overflow loop.

    When a search fails on result-buffer pressure
    (:class:`ResultBufferOverflowError` /
    :class:`KernelInvocationLimitError`), the engine grows
    ``result_buffer_items`` by ``growth_factor`` (at least to the failing
    query's required size) and retries — instead of looping all the way to
    ``MAX_KERNEL_INVOCATIONS`` or failing a request a larger buffer would
    serve.  Retries stop after ``max_attempts`` total attempts or once
    the deadline budget is exhausted — the ambient request
    :class:`Deadline` when the service set one, else ``deadline_s`` wall
    seconds from the first attempt.

    ``backoff_s`` > 0 spaces retries with exponential backoff plus
    deterministic jitter on the *modeled* clock: no real sleeping
    happens (retrying a simulated device is instant), but the wait is
    charged to the profile's ``backoff_s`` so modeled response time and
    lane occupancy reflect it — replacing the previous sleep-free busy
    re-invocation that under-reported retry cost.
    """

    max_attempts: int = 4
    growth_factor: float = 4.0
    deadline_s: float = 60.0
    #: base modeled backoff before the second attempt; doubles per
    #: retry.  0.0 = immediate re-invocation (the historical behavior).
    backoff_s: float = 0.0
    #: jitter fraction in [0, 1]: attempt n waits
    #: ``backoff_s * 2**(n-1) * (1 + jitter * u_n)`` with ``u_n`` a
    #: deterministic uniform draw — reproducible, but desynchronized
    #: across concurrent retriers like real jitter.
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.growth_factor <= 1.0:
            raise ValueError("growth_factor must be > 1")
        if self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be >= 0")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be within [0, 1]")

    def backoff_for(self, attempt: int) -> float:
        """Modeled seconds to wait after failed attempt ``attempt``
        (1-based).  Deterministic: same attempt number, same wait."""
        if self.backoff_s <= 0.0:
            return 0.0
        u = random.Random(attempt).random()
        return self.backoff_s * 2.0 ** (attempt - 1) \
            * (1.0 + self.jitter * u)


#: retry disabled: one attempt, errors surface immediately.
NO_RETRY = RetryPolicy(max_attempts=1)


class SearchEngine(abc.ABC):
    """A distance-threshold search engine bound to a database."""

    name: str = "engine"
    #: typed configuration class; ``None`` for engines without one
    #: (third-party engines registered via ``@register_engine``).
    config_type: type[EngineConfig] | None = None

    @abc.abstractmethod
    def search(self, queries: SegmentArray, d: float, *,
               exclude_same_trajectory: bool = False
               ) -> tuple[ResultSet, SearchProfile | CpuSearchProfile]:
        """Run the search; returns the result set and execution profile."""

    @classmethod
    def from_config(cls, database: SegmentArray,
                    config: EngineConfig | None = None, *,
                    gpu: VirtualGPU | None = None,
                    **params) -> "SearchEngine":
        """Construct the engine from a typed config (or loose params).

        ``config`` and ``params`` are mutually exclusive: pass a validated
        config object, or keyword parameters that are validated against
        :attr:`config_type` (unknown keys raise
        :class:`~repro.engines.config.ConfigError`).  ``gpu`` places a GPU
        engine on a specific :class:`~repro.gpu.device.VirtualGPU`.
        """
        if config is not None and params:
            raise ValueError("pass either config= or keyword parameters, "
                             "not both")
        kwargs: dict = {}
        if cls.config_type is not None:
            cfg = config if config is not None \
                else cls.config_type.from_params(**params)
            if not isinstance(cfg, cls.config_type):
                raise TypeError(
                    f"{cls.__name__} expects a {cls.config_type.__name__},"
                    f" got {type(cfg).__name__}")
            kwargs = cfg.to_kwargs()
        else:
            kwargs = dict(params)
        # CPU engines have no device; the placement hint applies only to
        # engines that own a VirtualGPU.
        if gpu is not None and issubclass(cls, GpuEngineBase):
            kwargs["gpu"] = gpu
        return cls(database, **kwargs)


@dataclass
class RangeBatch:
    """Per-thread candidate specifications for one kernel invocation.

    ``q_rows[i]`` is the query row thread ``i`` handles; its candidates are
    ``candidate_rows[cand_start[i] : cand_start[i+1]]`` (row indices into
    the engine's device-resident database ordering).
    """

    q_rows: np.ndarray
    candidate_rows: np.ndarray
    cand_start: np.ndarray

    def __post_init__(self) -> None:
        if self.cand_start.shape != (self.q_rows.shape[0] + 1,):
            raise ValueError("cand_start must have len(q_rows)+1 entries")

    @property
    def num_threads(self) -> int:
        return int(self.q_rows.shape[0])

    def lengths(self) -> np.ndarray:
        return np.diff(self.cand_start)


def _chunk_bounds(lens: np.ndarray) -> np.ndarray:
    """Thread indices splitting a batch into <= MAX_PAIRS_PER_CHUNK chunks.

    Returns boundaries ``[0, b1, ..., nthreads]``; each chunk takes whole
    threads and at least one thread, so a single oversized thread forms
    its own chunk (vectorized replacement of the old per-thread
    accumulation loop).
    """
    nthreads = lens.shape[0]
    bounds = [0]
    cum = np.cumsum(lens)
    t = 0
    while t < nthreads:
        # Furthest thread end whose cumulative pair count stays within
        # budget of the chunk start; always advance at least one thread.
        base = cum[t - 1] if t else 0
        t_end = int(np.searchsorted(cum, base + MAX_PAIRS_PER_CHUNK,
                                    side="right"))
        t_end = max(t_end, t + 1)
        bounds.append(t_end)
        t = t_end
    return np.asarray(bounds, dtype=np.int64)


def refine_ranges(
    queries: SegmentArray,
    database: SegmentArray,
    batch: RangeBatch,
    d: float,
    *,
    exclude_same_trajectory: bool,
    coefficients: PairCoefficients | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Refine every (thread, candidate) pair of a batch.

    Returns ``(hits_per_thread, q_rows, e_rows, t_lo, t_hi)`` where the
    last four arrays list the surviving pairs in thread order — the order
    in which threads would publish to the result buffer.

    The batch path refines all pairs in a few vectorized passes (chunked
    at ``MAX_PAIRS_PER_CHUNK`` so peak host memory stays flat).  When
    ``coefficients`` holds the precomputed ``d``-invariant quadratic
    coefficients of exactly this batch's pairs (see :class:`RefineCache`)
    only the per-``d`` root solving runs.  Under the ``"perthread"``
    execution mode the legacy one-thread-at-a-time reference runs
    instead (and ``coefficients`` is ignored).
    """
    lens = batch.lengths()
    nthreads = batch.num_threads

    if current_execution_mode() == "perthread":
        return _refine_ranges_perthread(
            queries, database, batch, d, lens,
            exclude_same_trajectory=exclude_same_trajectory)

    if coefficients is not None:
        res = solve_intervals(coefficients, d)
        hit_pos = np.flatnonzero(res.mask)
        local_thread = np.searchsorted(batch.cand_start, hit_pos,
                                       side="right") - 1
        hits_per_thread = np.bincount(
            local_thread, minlength=nthreads).astype(np.int64)
        return (hits_per_thread, batch.q_rows[local_thread],
                batch.candidate_rows[hit_pos], res.t_lo[hit_pos],
                res.t_hi[hit_pos])

    hits_per_thread = np.zeros(nthreads, dtype=np.int64)
    out_q, out_e, out_lo, out_hi = [], [], [], []

    bounds = _chunk_bounds(lens)
    for t, t_end in zip(bounds[:-1], bounds[1:]):
        span = slice(batch.cand_start[t], batch.cand_start[t_end])
        e_idx = batch.candidate_rows[span]
        q_idx = np.repeat(batch.q_rows[t:t_end], lens[t:t_end])
        res = compare_pairs(queries, database, q_idx, e_idx, d,
                            exclude_same_trajectory=exclude_same_trajectory)
        if res.num_hits:
            hit_pos = np.flatnonzero(res.mask)
            local_thread = t + np.searchsorted(
                batch.cand_start[t:t_end + 1] - batch.cand_start[t],
                hit_pos, side="right") - 1
            hits_per_thread += np.bincount(
                local_thread, minlength=nthreads)
            out_q.append(q_idx[hit_pos])
            out_e.append(e_idx[hit_pos])
            out_lo.append(res.t_lo[hit_pos])
            out_hi.append(res.t_hi[hit_pos])

    if out_q:
        return (hits_per_thread, np.concatenate(out_q),
                np.concatenate(out_e), np.concatenate(out_lo),
                np.concatenate(out_hi))
    z = np.zeros(0)
    zi = np.zeros(0, dtype=np.int64)
    return hits_per_thread, zi, zi.copy(), z, z.copy()


def _refine_ranges_perthread(
    queries: SegmentArray,
    database: SegmentArray,
    batch: RangeBatch,
    d: float,
    lens: np.ndarray,
    *,
    exclude_same_trajectory: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Legacy reference: refine one logical thread at a time."""
    nthreads = batch.num_threads
    hits_per_thread = np.zeros(nthreads, dtype=np.int64)
    out_q, out_e, out_lo, out_hi = [], [], [], []
    for t in range(nthreads):
        span = slice(batch.cand_start[t], batch.cand_start[t + 1])
        e_idx = batch.candidate_rows[span]
        q_idx = np.full(int(lens[t]), batch.q_rows[t], dtype=np.int64)
        res = compare_pairs(queries, database, q_idx, e_idx, d,
                            exclude_same_trajectory=exclude_same_trajectory)
        if res.num_hits:
            hit = res.mask
            hits_per_thread[t] = res.num_hits
            out_q.append(q_idx[hit])
            out_e.append(e_idx[hit])
            out_lo.append(res.t_lo[hit])
            out_hi.append(res.t_hi[hit])
    if out_q:
        return (hits_per_thread, np.concatenate(out_q),
                np.concatenate(out_e), np.concatenate(out_lo),
                np.concatenate(out_hi))
    z = np.zeros(0)
    zi = np.zeros(0, dtype=np.int64)
    return hits_per_thread, zi, zi.copy(), z, z.copy()


class RefineCache:
    """Per-engine cache of ``d``-invariant refinement coefficients.

    The temporal scheme's candidate schedule does not depend on ``d``
    (§IV-B): across a ``d``-sweep over one query set, every invocation-0
    pair and its quadratic coefficients are identical — only the constant
    term shifts.  The cache keys on the *identity* of the query set (a
    strong reference is held, so the id cannot be recycled) plus the
    exclusion flag, and stores the :class:`PairCoefficients` of the full
    first-invocation batch.  A hit turns refinement into root-solving
    only; results are bit-identical because the coefficients are the
    same arrays either way.

    ``max_pairs`` bounds the host memory the cache may pin (~56 bytes
    per alive pair); oversized batches are simply not cached.
    """

    def __init__(self, max_pairs: int = 64_000_000) -> None:
        self.max_pairs = int(max_pairs)
        self._queries: SegmentArray | None = None
        self._key: tuple | None = None
        self._coef: PairCoefficients | None = None

    def lookup(self, queries: SegmentArray,
               exclude_same_trajectory: bool
               ) -> PairCoefficients | None:
        """The cached coefficients for this exact query-set object."""
        if (self._queries is not None
                and queries is self._queries
                and self._key == (len(queries), exclude_same_trajectory)):
            return self._coef
        return None

    def coefficients_for(self, queries: SegmentArray,
                         database: SegmentArray, batch: RangeBatch,
                         *, exclude_same_trajectory: bool
                         ) -> PairCoefficients | None:
        """Fetch-or-compute the coefficients of ``batch``.

        Returns None (and caches nothing) when the batch exceeds
        ``max_pairs`` or the perthread reference mode is active — callers
        then fall back to the plain chunked refinement.
        """
        if current_execution_mode() != "batch":
            return None
        coef = self.lookup(queries, exclude_same_trajectory)
        if coef is not None:
            return coef
        num_pairs = int(batch.cand_start[-1])
        if num_pairs > self.max_pairs:
            return None
        lens = batch.lengths()
        # Build in MAX_PAIRS_PER_CHUNK chunks (concatenated afterwards):
        # one giant pass would allocate tens of full-batch temporaries
        # and stall on page faults.  Elementwise math, so chunk
        # boundaries never change a single bit of the result.
        bases: list[int] = []
        parts: list[PairCoefficients] = []
        bounds = _chunk_bounds(lens)
        for t, t_end in zip(bounds[:-1], bounds[1:]):
            span = slice(batch.cand_start[t], batch.cand_start[t_end])
            q_idx = np.repeat(batch.q_rows[t:t_end], lens[t:t_end])
            parts.append(pair_coefficients(
                queries, database, q_idx, batch.candidate_rows[span],
                exclude_same_trajectory=exclude_same_trajectory))
            bases.append(int(batch.cand_start[t]))
        if parts:
            coef = PairCoefficients(
                num_pairs=num_pairs,
                alive_idx=np.concatenate(
                    [b + c.alive_idx for b, c in zip(bases, parts)]),
                t0=np.concatenate([c.t0 for c in parts]),
                t1=np.concatenate([c.t1 for c in parts]),
                a=np.concatenate([c.a for c in parts]),
                b=np.concatenate([c.b for c in parts]),
                c0=np.concatenate([c.c0 for c in parts]))
        else:  # pragma: no cover - engines never launch empty batches
            z = np.zeros(0)
            coef = PairCoefficients(
                num_pairs=0, alive_idx=np.zeros(0, dtype=np.int64),
                t0=z, t1=z.copy(), a=z.copy(), b=z.copy(), c0=z.copy())
        self._queries = queries
        self._key = (len(queries), exclude_same_trajectory)
        self._coef = coef
        return coef


def first_fit_accept(hits_per_thread: np.ndarray,
                     free_items: int) -> np.ndarray:
    """Which threads publish their results this invocation.

    Threads complete in id order; a thread's batch is all-or-nothing.
    Threads with zero hits always complete (their empty append trivially
    succeeds).  Returns a boolean accept mask.
    """
    cum = np.cumsum(hits_per_thread)
    fits = cum <= free_items
    # After the first non-fitting thread, later non-empty threads are
    # rejected even if they would individually fit: the tail counter has
    # already passed capacity in the deterministic in-order model.
    if np.all(fits):
        return np.ones_like(fits)
    first_reject = int(np.argmin(fits))
    accept = np.zeros_like(fits)
    accept[:first_reject] = True
    accept |= hits_per_thread == 0
    return accept


class GpuEngineBase(SearchEngine):
    """Shared state and the incremental-processing loop for GPU engines.

    Subclasses implement :meth:`_search_once` — one full search attempt
    with the current buffer sizes.  :meth:`search` wraps it in the
    bounded-retry policy: on result-buffer pressure the buffer is grown
    (deadline- and attempt-bounded) and the attempt repeated, instead of
    the loop burning through ``MAX_KERNEL_INVOCATIONS``.
    """

    def __init__(self, database: SegmentArray, *,
                 gpu: VirtualGPU | None = None,
                 result_buffer_items: int = 2_000_000,
                 retry: RetryPolicy | None = None) -> None:
        if len(database) == 0:
            raise ValueError("database must not be empty")
        self.gpu = gpu or VirtualGPU()
        self.result_buffer = AtomicResultBuffer(result_buffer_items)
        self.retry = retry or RetryPolicy()
        self.database = database  # subclass may replace with sorted order
        self._sort_cache: tuple[SegmentArray, SegmentArray] | None = None

    # -- the retried search ----------------------------------------------------------

    @abc.abstractmethod
    def _search_once(self, queries: SegmentArray, d: float, *,
                     exclude_same_trajectory: bool = False
                     ) -> tuple[ResultSet, SearchProfile]:
        """One search attempt with the current buffer capacities."""

    def search(self, queries: SegmentArray, d: float, *,
               exclude_same_trajectory: bool = False
               ) -> tuple[ResultSet, SearchProfile]:
        """Run the search under the engine's :class:`RetryPolicy`."""
        telemetry = current_telemetry()
        with telemetry.span("engine.search", engine=self.name,
                            num_queries=len(queries)) as span:
            # The retry budget: the ambient request deadline when the
            # service set one, else this engine's standalone wall
            # deadline.
            deadline = current_deadline() \
                or Deadline.after(self.retry.deadline_s)
            backoff_total = 0.0
            for attempt in range(1, self.retry.max_attempts + 1):
                # A faulted prior attempt may have left items in the
                # device result buffer; a fresh attempt must not
                # republish them.
                if self.result_buffer.size:
                    self.result_buffer.drain()
                try:
                    results, profile = self._search_once(
                        queries, d,
                        exclude_same_trajectory=exclude_same_trajectory)
                except (ResultBufferOverflowError,
                        KernelInvocationLimitError) as exc:
                    if (attempt >= self.retry.max_attempts
                            or deadline.expired):
                        raise
                    target = max(
                        int(self.result_buffer.capacity_items
                            * self.retry.growth_factor),
                        exc.required_items)
                    backoff_total += self.retry.backoff_for(attempt)
                    telemetry.metrics.counter(
                        "repro_search_retries_total",
                        "result-buffer overflow retries").inc(
                            engine=self.name)
                    telemetry.events.emit(
                        "search_retry", engine=self.name,
                        attempt=attempt, target_items=target,
                        backoff_s=backoff_total,
                        error=type(exc).__name__)
                    self.grow_result_buffer(target)
                else:
                    profile.attempts = attempt
                    profile.backoff_s = backoff_total
                    span.set_attributes(
                        attempts=attempt,
                        invocations=profile.num_kernel_invocations,
                        redo_queries=profile.redo_queries,
                        result_items=profile.result_items)
                    m = telemetry.metrics
                    m.counter("repro_kernel_invocations_total",
                              "kernel invocations").inc(
                        profile.num_kernel_invocations,
                        engine=self.name)
                    m.counter("repro_redo_queries_total",
                              "queries re-processed after buffer "
                              "pressure").inc(
                        profile.redo_queries, engine=self.name)
                    if profile.defaulted_queries:
                        m.counter(
                            "repro_defaulted_queries_total",
                            "queries defaulted to the temporal "
                            "scheme").inc(
                            profile.defaulted_queries,
                            engine=self.name)
                    return results, profile
            raise AssertionError("unreachable")  # pragma: no cover

    def grow_result_buffer(self, capacity_items: int) -> None:
        """Replace the device result buffer with a larger one.

        The old allocation is released first so the grown buffer only has
        to fit alongside the database and index, not its former self.
        """
        capacity_items = int(capacity_items)
        if capacity_items <= self.result_buffer.capacity_items:
            return
        mem = self.gpu.memory
        if "result_buffer" in mem:
            mem.resize("result_buffer", (capacity_items, 4))
        else:  # engine built without _place_database (unit-test harness)
            mem.alloc("result_buffer", (capacity_items, 4))
        self.result_buffer = AtomicResultBuffer(capacity_items)

    # -- helpers for subclasses ------------------------------------------------------

    def _place_database(self, sorted_db: SegmentArray, label: str) -> None:
        """Store the (re-ordered) database in device global memory.

        Offline step: the transfer is *not* charged to response time, per
        the paper's methodology (§V-B), but it must fit in device memory.
        """
        mem = self.gpu.memory
        mem.put(f"{label}.coords", np.stack(
            [sorted_db.xs, sorted_db.ys, sorted_db.zs, sorted_db.ts,
             sorted_db.xe, sorted_db.ye, sorted_db.ze, sorted_db.te]))
        mem.put(f"{label}.ids", np.stack(
            [sorted_db.traj_ids, sorted_db.seg_ids]))
        if "result_buffer" not in mem:
            mem.alloc("result_buffer",
                      (self.result_buffer.capacity_items, 4))

    def _sorted_queries(self, queries: SegmentArray) -> SegmentArray:
        """``queries`` sorted by start time, memoized per query-set object.

        Returning the *same* sorted object for repeated searches over one
        query set lets identity-keyed caches downstream (notably
        :class:`RefineCache`) recognize the query set across a
        ``d``-sweep.  The sort itself is deterministic, so memoization
        never changes results.
        """
        cached = self._sort_cache
        if cached is not None and cached[0] is queries:
            return cached[1]
        q_sorted = queries.sorted_by_start_time()
        self._sort_cache = (queries, q_sorted)
        return q_sorted

    def _upload_queries(self, queries: SegmentArray) -> None:
        """Charge the h2d transfer of the query set (it fits on the GPU by
        assumption, §III) at search time."""
        nbytes = len(queries) * QUERY_ITEM_BYTES
        self.gpu.transfers.h2d("query_set", nbytes)
