"""GPUSpatial — flat-grid search engine (paper §IV-A, Algorithm 1).

Per kernel invocation, each live query gets one thread which:

1. rasterizes the query MBB **expanded by d** onto the grid;
2. binary-searches each overlapped cell in the non-empty-cell array ``G``
   (``O(log |G|)`` per probe);
3. copies the candidate entry ids of found cells from the lookup array
   ``A`` into its slice ``U_k`` of the shared candidate buffer —
   ``|U_k| = s / |live queries|``.  If the slice overflows, the thread
   atomically appends its query id to ``redo`` and **terminates without
   refining** (Algorithm 1 lines 10-12);
4. refines each buffered candidate and atomically appends results.

The host re-invokes the kernel with the ``redo`` list; each re-invocation
has fewer live queries, hence larger per-query buffer slices, so overflow
pressure decays geometrically.  Candidate ids are *not* deduplicated (an
id occurs in ``A`` once per overlapped cell), so redundant comparisons and
duplicate result items are possible; the host filters duplicates after the
search (§IV-A.2).

This scheme has no temporal selectivity at all: candidates are whatever
spatially overlaps, whenever it exists — one of the two reasons it loses
on large datasets (the other being buffer-pressure re-invocations).
"""

from __future__ import annotations

import time

import numpy as np

from ..core.execmode import current_execution_mode
from ..core.geometry import expand, segment_mbbs
from ..core.result import ResultSet
from ..core.types import SegmentArray
from ..gpu.kernel import KernelLauncher, LaunchSpec
from ..gpu.profiler import SearchProfile
from ..indexes.fsg import FlatGrid
from .base import (GpuEngineBase, KernelInvocationLimitError,
                   MAX_KERNEL_INVOCATIONS, RangeBatch,
                   ResultBufferOverflowError, first_fit_accept,
                   index_build_phase, refine_ranges)
from .config import GpuSpatialConfig
from .gpu_temporal import _expand_ranges

__all__ = ["GpuSpatialEngine"]

#: Upper bound on (query, cell) probe pairs rasterized per vectorized
#: chunk; keeps peak host memory flat independent of box sizes.
_MAX_PROBES_PER_CHUNK = 1 << 22


class GpuSpatialEngine(GpuEngineBase):
    """The GPUSpatial search engine."""

    name = "gpu_spatial"
    config_type = GpuSpatialConfig

    def __init__(self, database: SegmentArray, *,
                 cells_per_dim: int | tuple[int, int, int] = 50,
                 gpu=None,
                 candidate_buffer_items: int = 8_000_000,
                 result_buffer_items: int = 2_000_000,
                 retry=None) -> None:
        super().__init__(database, gpu=gpu,
                         result_buffer_items=result_buffer_items,
                         retry=retry)
        if candidate_buffer_items <= 0:
            raise ValueError("candidate buffer must be positive")
        #: the paper's overall buffer size ``s``, split across live queries.
        self.candidate_buffer_items = int(candidate_buffer_items)
        with index_build_phase(self.name):
            self.index = FlatGrid.build(database, cells_per_dim)
            self.database = database
            self._place_database(database, "fsg_db")
            mem = self.gpu.memory
            mem.put("fsg_G", self.index.cell_ids)
            mem.put("fsg_ranges", np.stack([self.index.cell_start,
                                            self.index.cell_end]))
            mem.put("fsg_A", self.index.lookup.astype(np.int32))
            mem.alloc("fsg_U", self.candidate_buffer_items,
                      dtype=np.int32)

    # -- candidate gathering (kernel steps 1-3) -----------------------------------

    def _gather(self, q_sorted: SegmentArray, live: np.ndarray, d: float
                ) -> tuple[RangeBatch, np.ndarray, np.ndarray, np.ndarray]:
        """Fill per-thread candidate slices.

        Returns ``(batch, overflowed, probe_ops, gather_ops)`` where
        ``overflowed`` flags threads that exceeded ``|U_k|`` (their
        candidate lists are left empty — the thread terminated).

        The batch path exploits the grid's physical layout: ``lookup``
        ranges of consecutive non-empty cells are contiguous
        (``cell_end[i] == cell_start[i+1]``), so each z-run of a query's
        cell box — a contiguous linear-coordinate interval — collapses to
        two binary searches in ``G`` plus one contiguous ``lookup``
        slice.  All live queries' runs are enumerated as flat
        ``(query, ix, iy)`` triples and searched in one vectorized pass;
        the per-cell op counts (``|cells| * log |G|`` probe charges) are
        modeled exactly as the reference per-cell gather records them.
        """
        if current_execution_mode() == "perthread":
            return self._gather_perthread(q_sorted, live, d)

        slice_cap = self.candidate_buffer_items // max(live.size, 1)
        boxes = expand(segment_mbbs(q_sorted).take(live), d)
        log_g = max(1, int(np.ceil(np.log2(max(self.index
                                               .num_nonempty_cells, 2)))))
        m = live.size
        index = self.index
        ny, nz = index.dims[1], index.dims[2]
        # bound[i]:bound[i+1] is non-empty cell i's lookup range; the
        # ranges tile lookup, so a run of cells is one contiguous slice.
        bound = np.append(index.cell_start, index.lookup.shape[0])

        lo_c, hi_c = FlatGrid._cell_span(boxes.lo, boxes.hi, index.origin,
                                         index.cell_size, index.dims)
        spans = hi_c - lo_c + 1                     # (m, 3)
        probe_ops = np.prod(spans, axis=1) * log_g
        nruns = spans[:, 0] * spans[:, 1]

        totals = np.zeros(m, dtype=np.int64)
        row_parts: list[np.ndarray] = []
        start_parts: list[np.ndarray] = []
        count_parts: list[np.ndarray] = []

        # Chunk queries so the flat per-run arrays stay small.
        cum = np.cumsum(nruns)
        q = 0
        while q < m:
            base = cum[q - 1] if q else 0
            q_end = int(np.searchsorted(cum, base + _MAX_PROBES_PER_CHUNK,
                                        side="right"))
            q_end = max(q_end, q + 1)

            nr = nruns[q:q_end]
            total = int(nr.sum())
            # Enumerate the k-th (ix, iy) z-run of each query, y-fastest —
            # ascending linear coordinate, the order
            # cells_overlapping_box emits cells.
            run_q = np.repeat(np.arange(q, q_end, dtype=np.int64), nr)
            offs = np.arange(total, dtype=np.int64) \
                - np.repeat(np.cumsum(nr) - nr, nr)
            sy = np.repeat(spans[q:q_end, 1], nr)
            ix = np.repeat(lo_c[q:q_end, 0], nr) + offs // sy
            iy = np.repeat(lo_c[q:q_end, 1], nr) + offs % sy
            h0 = (ix * ny + iy) * nz + np.repeat(lo_c[q:q_end, 2], nr)
            h1 = h0 + np.repeat(spans[q:q_end, 2], nr)  # exclusive
            c0 = np.searchsorted(index.cell_ids, h0, side="left")
            c1 = np.searchsorted(index.cell_ids, h1, side="left")
            a = bound[c0]
            counts = bound[c1] - a
            totals[q:q_end] = np.bincount(
                run_q - q, weights=counts,
                minlength=q_end - q).astype(np.int64)

            keep = counts > 0
            row_parts.append(run_q[keep])
            start_parts.append(a[keep])
            count_parts.append(counts[keep])
            q = q_end

        overflowed = totals > slice_cap
        gather_ops = np.where(overflowed, slice_cap, totals)
        lens = np.where(overflowed, 0, totals)

        run_q = np.concatenate(row_parts) if row_parts \
            else np.zeros(0, dtype=np.int64)
        keep = ~overflowed[run_q]
        starts_f = np.concatenate(start_parts)[keep] if start_parts \
            else np.zeros(0, dtype=np.int64)
        counts_f = np.concatenate(count_parts)[keep] if count_parts \
            else np.zeros(0, dtype=np.int64)
        candidate_rows = index.lookup[_expand_ranges(starts_f, counts_f)]

        cand_start = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(lens, out=cand_start[1:])
        batch = RangeBatch(q_rows=live, candidate_rows=candidate_rows,
                           cand_start=cand_start)
        return batch, overflowed, probe_ops, gather_ops

    def _gather_perthread(self, q_sorted: SegmentArray, live: np.ndarray,
                          d: float
                          ) -> tuple[RangeBatch, np.ndarray, np.ndarray,
                                     np.ndarray]:
        """Legacy reference: gather one logical thread at a time."""
        slice_cap = self.candidate_buffer_items // max(live.size, 1)
        boxes = expand(segment_mbbs(q_sorted).take(live), d)
        log_g = max(1, int(np.ceil(np.log2(max(self.index
                                               .num_nonempty_cells, 2)))))

        cand_lists: list[np.ndarray] = []
        lens = np.zeros(live.size, dtype=np.int64)
        overflowed = np.zeros(live.size, dtype=bool)
        probe_ops = np.zeros(live.size, dtype=np.int64)
        gather_ops = np.zeros(live.size, dtype=np.int64)
        empty = np.zeros(0, dtype=np.int64)

        for i in range(live.size):
            cells = self.index.cells_overlapping_box(boxes.lo[i],
                                                     boxes.hi[i])
            found, start, end = self.index.probe(cells)
            probe_ops[i] = cells.size * log_g
            counts = (end - start)[found]
            total = int(counts.sum())
            if total > slice_cap:
                # Thread terminates: partial fill up to capacity was paid,
                # then the query id goes to `redo` (one atomic).
                overflowed[i] = True
                gather_ops[i] = slice_cap
                cand_lists.append(empty)
                continue
            gather_ops[i] = total
            lens[i] = total
            if total:
                starts_f = start[found]
                ends_f = end[found]
                parts = [self.index.lookup[s:e]
                         for s, e in zip(starts_f, ends_f)]
                cand_lists.append(np.concatenate(parts))
            else:
                cand_lists.append(empty)

        cand_start = np.zeros(live.size + 1, dtype=np.int64)
        np.cumsum(lens, out=cand_start[1:])
        candidate_rows = (np.concatenate(cand_lists) if cand_lists
                          else empty)
        batch = RangeBatch(q_rows=live, candidate_rows=candidate_rows,
                           cand_start=cand_start)
        return batch, overflowed, probe_ops, gather_ops

    # -- search ---------------------------------------------------------------------

    def _search_once(self, queries: SegmentArray, d: float, *,
                     exclude_same_trajectory: bool = False
                     ) -> tuple[ResultSet, SearchProfile]:
        wall0 = time.perf_counter()
        self.gpu.reset_counters()
        launcher = KernelLauncher(self.gpu)

        # No sorting of Q for the spatial scheme (§IV-A.2).
        q_sorted = queries
        self._upload_queries(q_sorted)

        pending = np.arange(len(q_sorted), dtype=np.int64)
        # Host-side progress guarantee: when an invocation completes no
        # query (every live thread overflowed an identical-size U_k), the
        # host passes only half the redo list to the next invocation,
        # doubling the per-thread slice.  The paper's redo mechanism
        # already lets the host choose which query ids to resubmit; this
        # policy just makes its convergence unconditional.
        limit = pending.size
        parts: list[ResultSet] = []
        redo_total = 0
        raw_items = 0

        for invocation in range(MAX_KERNEL_INVOCATIONS):
            if pending.size == 0:
                break
            live = pending[:limit]
            inputs: tuple[tuple[str, int], ...] = ()
            if invocation > 0:
                inputs = (("redo_query_ids", live.size * 8),)

            def kernel(k, live=live):
                batch, overflowed, probe_ops, gather_ops = self._gather(
                    q_sorted, live, d)
                lens = batch.lengths()
                hits, pq, pe, plo, phi = refine_ranges(
                    q_sorted, self.database, batch, d,
                    exclude_same_trajectory=exclude_same_trajectory)
                k.thread_work[:] = lens
                k.gather_work[:] = probe_ops + gather_ops
                k.add_atomics(int(hits.sum())
                              + int(np.count_nonzero(overflowed)))

                accept = first_fit_accept(hits,
                                          self.result_buffer.free_items)
                accept &= ~overflowed
                pair_accept = np.repeat(accept, hits)
                if not self.result_buffer.try_append(
                        pq[pair_accept], pe[pair_accept],
                        plo[pair_accept], phi[pair_accept]):
                    raise RuntimeError("internal: accepted batch overflow")
                return hits, accept, overflowed

            out = launcher.run(
                LaunchSpec(name=self.name, num_threads=live.size,
                           inputs=inputs), kernel)
            hits, accept, overflowed = out.value

            qd, ed, lod, hid = self.result_buffer.drain()
            self.gpu.transfers.d2h("result_set", qd.size * 32)
            raw_items += qd.size
            parts.append(ResultSet(q_sorted.seg_ids[qd],
                                   self.database.seg_ids[ed], lod, hid))

            rejected = ~accept
            redo = live[rejected]
            pending = np.concatenate([redo, pending[limit:]])
            redo_total += int(redo.size)
            if redo.size:
                self.gpu.transfers.d2h("redo_list", redo.size * 8)
                if redo.size == live.size:
                    # No progress this invocation.
                    if live.size == 1:
                        if bool(overflowed[rejected][0]):
                            raise RuntimeError(
                                "candidate buffer too small: one query's "
                                "candidate set exceeds the whole buffer "
                                f"(s={self.candidate_buffer_items}); "
                                "increase candidate_buffer_items or "
                                "coarsen the grid")
                        worst = int(hits[rejected].max())
                        raise ResultBufferOverflowError(
                            "result buffer too small for a single query "
                            f"({worst} items > "
                            f"{self.result_buffer.capacity_items} "
                            "capacity); increase result_buffer_items or "
                            "let the retry policy grow it",
                            required_items=worst)
                    limit = max(1, live.size // 2)
                else:
                    limit = pending.size
                if invocation == MAX_KERNEL_INVOCATIONS - 1:
                    raise KernelInvocationLimitError(
                        "kernel re-invocation limit reached; increase the "
                        "result buffer capacity",
                        required_items=self.result_buffer.capacity_items
                        * 2)
            else:
                limit = pending.size if pending.size else 1

        raw = ResultSet.from_parts(parts)
        final = raw.deduplicated()
        profile = SearchProfile.capture(
            self.name, self.gpu, num_queries=len(queries),
            schedule_items=0,   # no host-side schedule for this scheme
            redo_queries=redo_total,
            raw_result_items=raw_items,
            result_items=len(final),
            index_bytes=self.index.nbytes(),
            wall_seconds=time.perf_counter() - wall0,
        )
        return final, profile
