"""CPU sequential scan — the index-free lower-bound baseline.

Not part of the paper's evaluation, but the natural sanity baseline any
index must beat: refine every temporally-plausible pair with no index at
all (a time-sorted scan bounded by the database's maximum segment extent,
so it's a *smart* scan rather than the full cross product).  Useful for

* validating that the indexes actually earn their complexity on a given
  dataset (see ``tune``-style experiments), and
* tiny databases, where building any index costs more than it saves.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.result import ResultSet
from ..core.types import SegmentArray
from ..gpu.profiler import CpuSearchProfile
from ..obs.telemetry import current as current_telemetry
from .base import RangeBatch, SearchEngine, refine_ranges
from .config import CpuScanConfig

__all__ = ["CpuScanEngine"]


class CpuScanEngine(SearchEngine):
    """Time-bounded sequential scan on the CPU."""

    name = "cpu_scan"
    config_type = CpuScanConfig

    def __init__(self, database: SegmentArray) -> None:
        if len(database) == 0:
            raise ValueError("database must not be empty")
        self.database = database.sorted_by_start_time()
        # A segment can only overlap queries within max_extent of its
        # start; precompute for the scan window.
        self._max_extent = float(
            (self.database.te - self.database.ts).max())

    def search(self, queries: SegmentArray, d: float, *,
               exclude_same_trajectory: bool = False
               ) -> tuple[ResultSet, CpuSearchProfile]:
        with current_telemetry().span(
                "engine.search", engine=self.name,
                num_queries=len(queries)) as span:
            result, profile = self._search_impl(
                queries, d,
                exclude_same_trajectory=exclude_same_trajectory)
            span.set_attributes(comparisons=profile.comparisons,
                                result_items=profile.result_items)
            return result, profile

    def _search_impl(self, queries: SegmentArray, d: float, *,
                     exclude_same_trajectory: bool = False
                     ) -> tuple[ResultSet, CpuSearchProfile]:
        wall0 = time.perf_counter()
        db = self.database
        # Candidate rows for query k: entries with ts <= q.te and
        # ts >= q.ts - max_extent (a superset of temporal overlap).
        lo = np.searchsorted(db.ts, queries.ts - self._max_extent,
                             side="left")
        hi = np.searchsorted(db.ts, queries.te, side="right") - 1
        lens = np.maximum(hi - lo + 1, 0)
        cand_start = np.zeros(len(queries) + 1, dtype=np.int64)
        np.cumsum(lens, out=cand_start[1:])
        total = int(lens.sum())
        cand_rows = np.arange(total, dtype=np.int64) \
            - np.repeat(np.cumsum(lens) - lens, lens) \
            + np.repeat(lo, lens)
        batch = RangeBatch(q_rows=np.arange(len(queries),
                                            dtype=np.int64),
                           candidate_rows=cand_rows,
                           cand_start=cand_start)
        hits, pq, pe, plo, phi = refine_ranges(
            queries, db, batch, d,
            exclude_same_trajectory=exclude_same_trajectory)
        result = ResultSet(queries.seg_ids[pq], db.seg_ids[pe],
                           plo, phi).deduplicated()
        profile = CpuSearchProfile(
            engine=self.name,
            num_queries=len(queries),
            node_visits=0,
            comparisons=total,
            result_items=len(result),
            index_bytes=0,
            wall_seconds=time.perf_counter() - wall0,
        )
        return result, profile
