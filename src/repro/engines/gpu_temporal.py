"""GPUTemporal — temporal indexing search engine (paper §IV-B, Alg. 2).

Workflow per search:

1. Host sorts ``Q`` by non-decreasing ``t_start`` (``O(|Q| log |Q|)``).
2. Host computes the *schedule* ``S``: for each query, the contiguous
   candidate row range ``E_k`` from the temporal-bin index (near-constant
   time per query thanks to the sorted order; §IV-B.2 notes computing this
   on the GPU yielded no gain).
3. ``Q`` and ``S`` are shipped to the device; the kernel assigns one query
   per thread, which refines every candidate in ``D[E_k]`` and atomically
   appends results.
4. If the device result buffer fills, unpublished queries are re-processed
   by another invocation after the host drains the buffer — the paper's
   incremental processing of large query sets.

The candidate count of a query does not depend on ``d`` — the scheme's
signature behaviour: response time is flat in the query distance, except
for the result-volume effects (more atomic appends, more d2h traffic, more
invocations) at large ``d``.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.ranges import expand_ranges
from ..core.result import ResultSet
from ..core.types import SegmentArray
from ..gpu.kernel import KernelLauncher, LaunchSpec
from ..gpu.profiler import SearchProfile
from ..indexes.temporal import TemporalIndex
from .base import (GpuEngineBase, KernelInvocationLimitError,
                   MAX_KERNEL_INVOCATIONS, RangeBatch, RefineCache,
                   ResultBufferOverflowError, first_fit_accept,
                   index_build_phase, refine_ranges)
from .config import GpuTemporalConfig

__all__ = ["GpuTemporalEngine"]


class GpuTemporalEngine(GpuEngineBase):
    """The GPUTemporal search engine."""

    name = "gpu_temporal"
    config_type = GpuTemporalConfig

    def __init__(self, database: SegmentArray, *, num_bins: int = 1000,
                 gpu=None, result_buffer_items: int = 2_000_000,
                 retry=None) -> None:
        super().__init__(database, gpu=gpu,
                         result_buffer_items=result_buffer_items,
                         retry=retry)
        # Offline: build the index and place D (sorted) + bins on device.
        with index_build_phase(self.name):
            self.index = TemporalIndex.build(database, num_bins)
            self.database = self.index.segments
            self._place_database(self.database, "temporal_db")
            self.gpu.memory.put("temporal_bins", np.stack(
                [self.index.bin_start, self.index.bin_end,
                 self.index.bin_first.astype(np.float64),
                 self.index.bin_last.astype(np.float64)]))
        # The schedule is d-invariant (§IV-B), so across a d-sweep over
        # one query set the invocation-0 batch and its refinement
        # coefficients are reusable verbatim.
        self._refine_cache = RefineCache()
        self._batch_cache: tuple | None = None

    # -- schedule -------------------------------------------------------------

    def _make_schedule(self, q_sorted: SegmentArray
                       ) -> tuple[np.ndarray, np.ndarray]:
        return self.index.candidate_rows(q_sorted.ts, q_sorted.te)

    # -- search ---------------------------------------------------------------

    def _search_once(self, queries: SegmentArray, d: float, *,
                     exclude_same_trajectory: bool = False
                     ) -> tuple[ResultSet, SearchProfile]:
        wall0 = time.perf_counter()
        self.gpu.reset_counters()
        launcher = KernelLauncher(self.gpu)

        q_sorted = self._sorted_queries(queries)
        row_lo, row_hi = self._make_schedule(q_sorted)
        self._upload_queries(q_sorted)
        self.gpu.transfers.h2d("schedule", len(q_sorted) * 16)

        live = np.arange(len(q_sorted), dtype=np.int64)
        parts: list[ResultSet] = []
        redo_total = 0
        raw_items = 0
        coef_full = None
        full_cand_start = None

        for invocation in range(MAX_KERNEL_INVOCATIONS):
            if live.size == 0:
                break
            inputs: tuple[tuple[str, int], ...] = ()
            if invocation > 0:
                inputs = (("redo_query_ids", live.size * 8),)

            # Invocation 0 covers the full (d-invariant) schedule, so
            # both its batch and its coefficients are cacheable across
            # a d-sweep; redo invocations handle a subset of those
            # same pairs, gathered from the cached coefficients.
            coef = None
            if invocation == 0:
                cached = self._batch_cache
                if cached is not None and cached[0] is q_sorted:
                    lens, batch = cached[1], cached[2]
                else:
                    lens = np.maximum(row_hi - row_lo + 1, 0)
                    cand_start = np.zeros(live.size + 1, dtype=np.int64)
                    np.cumsum(lens, out=cand_start[1:])
                    batch = RangeBatch(
                        q_rows=live,
                        candidate_rows=_expand_ranges(row_lo, lens),
                        cand_start=cand_start)
                    self._batch_cache = (q_sorted, lens, batch)
                coef = coef_full = self._refine_cache.coefficients_for(
                    q_sorted, self.database, batch,
                    exclude_same_trajectory=exclude_same_trajectory)
                full_cand_start = batch.cand_start
            else:
                lens = np.maximum(row_hi[live] - row_lo[live] + 1, 0)
                cand_start = np.zeros(live.size + 1, dtype=np.int64)
                np.cumsum(lens, out=cand_start[1:])
                batch = RangeBatch(q_rows=live,
                                   candidate_rows=_expand_ranges(
                                       row_lo[live], lens),
                                   cand_start=cand_start)
                if coef_full is not None:
                    coef = coef_full.take(expand_ranges(
                        full_cand_start[live], lens))

            def kernel(k, lens=lens, batch=batch, coef=coef):
                hits, pq, pe, plo, phi = refine_ranges(
                    q_sorted, self.database, batch, d,
                    exclude_same_trajectory=exclude_same_trajectory,
                    coefficients=coef)
                k.thread_work[:] = lens
                # Every produced result attempts one atomic append.
                k.add_atomics(int(hits.sum()))

                accept = first_fit_accept(hits,
                                          self.result_buffer.free_items)
                pair_accept = np.repeat(accept, hits)
                ok = self.result_buffer.try_append(
                    pq[pair_accept], pe[pair_accept],
                    plo[pair_accept], phi[pair_accept])
                if not ok:  # pragma: no cover - first_fit sizes the batch
                    raise RuntimeError("internal: accepted batch overflow")
                return hits, accept

            out = launcher.run(
                LaunchSpec(name=self.name, num_threads=live.size,
                           inputs=inputs), kernel)
            hits, accept = out.value

            qd, ed, lod, hid = self.result_buffer.drain()
            self.gpu.transfers.d2h("result_set", qd.size * 32)
            raw_items += qd.size
            parts.append(ResultSet(q_sorted.seg_ids[qd],
                                   self.database.seg_ids[ed], lod, hid))

            rejected = ~accept
            live = live[rejected]
            redo_total += int(live.size)
            if live.size:
                self.gpu.transfers.d2h("redo_list", live.size * 8)
                worst = int(hits[rejected].max())
                if worst > self.result_buffer.capacity_items:
                    raise ResultBufferOverflowError(
                        "result buffer too small for a single query "
                        f"({worst} items > "
                        f"{self.result_buffer.capacity_items} capacity); "
                        "increase result_buffer_items or let the retry "
                        "policy grow it", required_items=worst)
                if invocation == MAX_KERNEL_INVOCATIONS - 1:
                    raise KernelInvocationLimitError(
                        "kernel re-invocation limit reached; increase the "
                        "result buffer capacity",
                        required_items=self.result_buffer.capacity_items
                        * 2)

        raw = ResultSet.from_parts(parts)
        final = raw.deduplicated()
        profile = SearchProfile.capture(
            self.name, self.gpu, num_queries=len(queries),
            schedule_items=len(queries),
            redo_queries=redo_total,
            raw_result_items=raw_items,
            result_items=len(final),
            index_bytes=self.index.nbytes(),
            wall_seconds=time.perf_counter() - wall0,
        )
        return final, profile


# Retained alias: sibling engines import the helper from here.
_expand_ranges = expand_ranges
