"""Warm-ingest query latency vs the fully-compacted index.

The claim the compaction policy makes (ISSUE: ingestion): as long as the
delta stays within its policy bounds, a query against a *dirty* snapshot
(warm base engine + brute-force delta overlay) costs at most ~1.2x the
modeled latency of the same query against a fully-compacted index — and
the base engine is *reused* across every ingest epoch (cache hits, no
rebuilds on the hot path).

The benchmark ingests a stream of trajectory batches into a warm
service, measures modeled per-request latency at each epoch, compacts,
re-measures, and asserts:

* every post-ingest request hit the warm base engine (the acceptance
  criterion "cache hit on the base engine across epochs"),
* the worst dirty-snapshot latency stays within ``LATENCY_FACTOR`` of
  the compacted-index latency,
* answers are identical to a from-scratch rebuild at every step.
"""

import numpy as np
import pytest
from .conftest import emit

from repro.core.types import SegmentArray, Trajectory
from repro.engines.cpu_scan import CpuScanEngine
from repro.ingest import CompactionPolicy
from repro.service import QueryService, SearchRequest

METHOD = "gpu_temporal"
PARAMS = {"num_bins": 200}
D = 1.5
NUM_INGESTS = 6
TRAJ_PER_INGEST = 2
LATENCY_FACTOR = 1.2


def _trajs(num, steps, *, seed, id_offset=0, box=25.0):
    rng = np.random.default_rng(seed)
    out = []
    for k in range(num):
        start = rng.uniform(0.0, box, size=3)
        stepv = rng.normal(0.0, 1.0, size=(steps - 1, 3))
        pos = np.vstack([start, start + np.cumsum(stepv, axis=0)])
        times = rng.uniform(0.0, 5.0) + np.arange(steps, dtype=float)
        out.append(Trajectory(id_offset + k, times, pos))
    return out


@pytest.fixture(scope="module")
def workload():
    base = SegmentArray.from_trajectories(_trajs(60, 40, seed=3))
    queries = SegmentArray.from_trajectories(
        _trajs(4, 20, seed=11, id_offset=9_000))
    arrivals = [
        SegmentArray.from_trajectories(
            _trajs(TRAJ_PER_INGEST, 30, seed=100 + i,
                   id_offset=1_000 + 10 * i))
        for i in range(NUM_INGESTS)
    ]
    return base, queries, arrivals


def test_warm_ingest_latency_within_budget(workload):
    base, queries, arrivals = workload
    # A policy wide enough that the whole stream fits in the delta:
    # compaction is triggered manually at the end, so the benchmark
    # sees the dirtiest allowed snapshot.
    svc = QueryService(base, compaction=CompactionPolicy(
        max_delta_segments=100_000, max_delta_ratio=10.0))
    req = SearchRequest(queries=queries, d=D, method=METHOD,
                        params=PARAMS)

    resp0 = svc.submit(req)           # builds + warms the base engine
    assert resp0.ok and not resp0.metrics.cache_hit

    dirty = []
    for i, batch in enumerate(arrivals):
        svc.ingest(batch)
        resp = svc.submit(req)
        assert resp.ok
        # Acceptance criterion: the warm base engine served every
        # epoch — ingestion never invalidated or rebuilt it.
        assert resp.metrics.cache_hit, f"epoch {i}: base engine rebuilt"
        assert resp.metrics.delta_segments > 0
        truth = CpuScanEngine(
            svc.current_snapshot().logical()).search(queries, D)[0]
        assert resp.outcome.results.equivalent_to(truth)
        dirty.append(resp)
    assert svc.cache.stats.invalidations == 0

    svc.compact()
    compacted = svc.submit(req)
    assert compacted.ok
    assert compacted.metrics.delta_segments == 0
    truth = CpuScanEngine(
        svc.current_snapshot().logical()).search(queries, D)[0]
    assert compacted.outcome.results.equivalent_to(truth)

    base_line = compacted.metrics.modeled_seconds
    worst = max(r.metrics.modeled_seconds for r in dirty)
    rows = [f"{'epoch':>6s} {'delta rows':>11s} {'modeled s':>12s} "
            f"{'overlay s':>11s} {'vs compacted':>13s}"]
    for r in dirty:
        rows.append(
            f"{r.metrics.snapshot_epoch:6d} "
            f"{r.metrics.delta_segments:11d} "
            f"{r.metrics.modeled_seconds:12.6f} "
            f"{r.metrics.delta_scan_s:11.6f} "
            f"{r.metrics.modeled_seconds / base_line:12.2f}x")
    rows.append(f"{'compacted':>18s} {base_line:12.6f} "
                f"{'':11s} {1.0:12.2f}x")
    emit("ingest_latency",
         "warm-ingest query latency vs fully-compacted index "
         f"({METHOD}, {NUM_INGESTS} ingests)\n" + "\n".join(rows))

    assert worst <= LATENCY_FACTOR * base_line, (
        f"dirty-snapshot latency {worst:.6f}s exceeds "
        f"{LATENCY_FACTOR}x the compacted baseline {base_line:.6f}s")
