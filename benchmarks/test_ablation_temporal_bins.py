"""T-BINS — §V-C/§V-D in-text: GPUTemporal vs number of temporal bins.

Paper findings: few bins => poor temporal selectivity => large candidate
sets; response time falls with bin count and then saturates (no further
selectivity gain past ~10,000 bins on Random, ~1,000 on Merger);
independent of d throughout.
"""


from repro.experiments import series_table

from .conftest import emit

BIN_COUNTS = (10, 100, 1_000, 10_000)


def test_temporal_bins_sweep(benchmark, s1_runner, s2_runner):
    def sweep():
        out = {}
        for name, runner, d in [("random", s1_runner, 25.0),
                                ("merger", s2_runner, 1.0)]:
            for m in BIN_COUNTS:
                rec, _ = runner.run_one("gpu_temporal", d, num_bins=m)
                out[(name, m)] = rec
        return out

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = {name: [records[(name, m)].modeled_seconds
                     for m in BIN_COUNTS]
              for name in ("random", "merger")}
    emit("ablation_temporal_bins",
         series_table("T-BINS — GPUTemporal response time vs bin count "
                      "(columns: bins)", list(BIN_COUNTS), series))

    for name in ("random", "merger"):
        cmps = [records[(name, m)].comparisons for m in BIN_COUNTS]
        times = [records[(name, m)].modeled_seconds for m in BIN_COUNTS]
        # Selectivity improves monotonically with bin count ...
        assert cmps == sorted(cmps, reverse=True)
        # ... with a large initial win ...
        assert times[0] > 2.0 * times[-1]
        # ... and diminishing returns at the top end (saturation).
        assert times[-2] / times[-1] < times[0] / times[-2] + 1.0


def test_temporal_bins_d_independent(benchmark, s1_runner):
    """The sweep's conclusion holds at any d: candidates don't change."""

    def run():
        a, _ = s1_runner.run_one("gpu_temporal", 5.0, num_bins=1000)
        b, _ = s1_runner.run_one("gpu_temporal", 50.0, num_bins=1000)
        return a, b

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    assert a.comparisons == b.comparisons
