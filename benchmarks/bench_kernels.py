"""Ratcheted kernel benchmark: fig4/fig6 sweeps, wall + modeled time.

Measures the warm per-engine wall-clock of the paper's Figure 4 (S1
random) and Figure 6 (S3 random-dense) d-sweeps, alongside the
deterministic modeled response times, and writes ``BENCH_kernels.json``.
With ``--check`` the measurement is compared against the committed
baseline (``benchmarks/BENCH_kernels.json``): a workload whose total
wall-clock regresses more than the threshold fails the run.

Wall-clock on one machine means little on another, so every run also
times a fixed NumPy calibration probe; the baseline comparison is
normalized by the probe ratio before the threshold applies.  The
baseline ratchets forward: after a real improvement, re-run with
``--update`` and commit the new file.

Run:
    PYTHONPATH=src python benchmarks/bench_kernels.py            # measure
    PYTHONPATH=src python benchmarks/bench_kernels.py --check    # CI gate
    PYTHONPATH=src python benchmarks/bench_kernels.py --update   # ratchet
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.experiments.harness import ExperimentRunner
from repro.experiments.scenarios import (scenario_s1_random,
                                         scenario_s3_random_dense)

BASELINE = Path(__file__).resolve().parent / "BENCH_kernels.json"

WORKLOADS = {
    "fig4_random": (scenario_s1_random,
                    ["cpu_rtree", "gpu_spatial", "gpu_temporal",
                     "gpu_spatiotemporal"]),
    "fig6_random_dense": (scenario_s3_random_dense,
                          ["cpu_rtree", "gpu_temporal",
                           "gpu_spatiotemporal"]),
}

#: Allowed normalized wall-clock regression before --check fails.
THRESHOLD = 0.10

#: Absolute slack in units of the calibration-probe time, added on top
#: of the relative threshold.  Sub-second workloads sit below timer
#: jitter at 10%; a real regression (losing a vectorized path is 5-10x)
#: clears this floor by an order of magnitude.
SLACK_PROBES = 0.5


class CalibrationProbe:
    """A fixed NumPy workload — a machine-speed yardstick.

    Mirrors the benchmarked kernels' mix (sort, searchsorted, gather,
    elementwise) so the probe scales roughly like the engines do across
    hosts.  ``sample()`` is called interleaved with the benchmark
    repeats and the minimum is kept, so on a noisy shared machine the
    probe and the per-step minima come from the same quiet periods.
    """

    def __init__(self) -> None:
        rng = np.random.default_rng(0)
        self.keys = rng.random(2_000_000)
        self.probes = rng.random(500_000)
        self.best = float("inf")

    def sample(self) -> None:
        t0 = time.perf_counter()
        order = np.argsort(self.keys, kind="stable")
        srt = self.keys[order]
        pos = np.searchsorted(srt, self.probes)
        np.clip(pos, 0, srt.size - 1, out=pos)
        gathered = srt[pos]
        (gathered * gathered + self.probes).sum()
        self.best = min(self.best, time.perf_counter() - t0)


def measure(repeats: int) -> dict:
    """One full measurement: every workload, warm, min over repeats.

    The kept wall-clock per engine is the sum over the sweep's ``d``
    values of the *per-d* minimum across repeats — a finer-grained
    minimum than timing whole sweeps, so a transient stall poisons one
    (engine, d, repeat) cell instead of a whole repeat.
    """
    probe = CalibrationProbe()
    probe.sample()
    out: dict = {"workloads": {}}
    for name, (scenario_fn, engines) in WORKLOADS.items():
        runner = ExperimentRunner(scenario_fn())
        # Build indexes and warm the d-invariant caches off the clock.
        runner.sweep(engines)
        d_values = runner.scenario.d_values
        wall = {e: np.full(len(d_values), np.inf) for e in engines}
        modeled: dict[str, float] = {}
        for _ in range(repeats):
            probe.sample()
            for engine in engines:
                total_modeled = 0.0
                for i, d in enumerate(d_values):
                    t0 = time.perf_counter()
                    rec, _ = runner.run_one(engine, d)
                    wall[engine][i] = min(wall[engine][i],
                                          time.perf_counter() - t0)
                    total_modeled += rec.modeled_seconds
                modeled[engine] = total_modeled
        probe.sample()
        out["workloads"][name] = {
            "engines": {
                e: {"wall_seconds": round(float(wall[e].sum()), 4),
                    "modeled_seconds": round(modeled[e], 6)}
                for e in engines},
            "total_wall_seconds": round(
                float(sum(wall[e].sum() for e in engines)), 4),
        }
    out["probe_seconds"] = probe.best
    return out


def check(measured: dict, baseline: dict) -> list[str]:
    """Normalized ratchet comparison; returns failure messages."""
    failures: list[str] = []
    speed = measured["probe_seconds"] / baseline["probe_seconds"]
    for name, base_wl in baseline["workloads"].items():
        meas_wl = measured["workloads"].get(name)
        if meas_wl is None:
            failures.append(f"{name}: missing from measurement")
            continue
        base = base_wl["total_wall_seconds"] * speed
        got = meas_wl["total_wall_seconds"]
        allowed = (base * (1.0 + THRESHOLD)
                   + SLACK_PROBES * measured["probe_seconds"])
        status = "OK" if got <= allowed else "REGRESSED"
        print(f"  {name}: {got:.3f}s vs normalized baseline "
              f"{base:.3f}s (allowed {allowed:.3f}s) {status}")
        if got > allowed:
            failures.append(
                f"{name}: wall-clock {got:.3f}s exceeds normalized "
                f"baseline {base:.3f}s by more than {THRESHOLD:.0%} "
                f"+ jitter slack ({allowed:.3f}s allowed)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_kernels.json",
                        help="where to write the measurement")
    parser.add_argument("--repeats", type=int, default=3,
                        help="warm repetitions; min is kept (default 3)")
    parser.add_argument("--check", action="store_true",
                        help="fail if wall-clock regresses past the "
                             "committed baseline")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline with this "
                             "measurement")
    args = parser.parse_args(argv)

    measured = measure(args.repeats)
    Path(args.out).write_text(json.dumps(measured, indent=2) + "\n")
    print(f"wrote {args.out}")
    for name, wl in measured["workloads"].items():
        print(f"  {name}: total {wl['total_wall_seconds']:.3f}s wall")
        for engine, row in wl["engines"].items():
            print(f"    {engine}: {row['wall_seconds']:.3f}s wall, "
                  f"{row['modeled_seconds']:.3f}s modeled")

    if args.update:
        BASELINE.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"baseline updated: {BASELINE}")

    if args.check:
        if not BASELINE.exists():
            print(f"no baseline at {BASELINE}; run with --update first",
                  file=sys.stderr)
            return 2
        baseline = json.loads(BASELINE.read_text())
        print("ratchet check:")
        failures = check(measured, baseline)
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            return 1
        print("ratchet check passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
