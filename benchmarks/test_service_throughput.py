"""Serving-layer throughput: warm engine cache vs per-batch rebuilds.

The headline claim of the batched query service (ISSUE: api_redesign):
for a workload of repeated batches against one database, a warm
:class:`~repro.service.QueryService` amortizes the index build across
the whole workload, while the naive loop pays it once per batch.  The
benchmark asserts a >=5x reduction in combined modeled + wall time for
an 8-batch workload, and that exactly one cache miss (the first batch)
occurred.
"""

import time

import numpy as np
import pytest
from .conftest import emit

from repro.core.search import DistanceThresholdSearch
from repro.data import random_dataset
from repro.service import QueryService, SearchRequest

NUM_BATCHES = 8
METHOD = "gpu_spatiotemporal"
# A fine-grained index makes the build the dominant per-request cost —
# exactly the regime the engine cache targets (online queries against a
# periodically rebuilt offline index, paper §V-B).
PARAMS = {"num_bins": 400, "num_subbins": 8}
D = 1.0
SEGMENTS_PER_BATCH = 10


@pytest.fixture(scope="module")
def workload():
    db = random_dataset(scale=0.1, rng=np.random.default_rng(7))
    rng = np.random.default_rng(123)
    batches = []
    for _ in range(NUM_BATCHES):
        tid = rng.choice(np.unique(db.traj_ids))
        rows = np.flatnonzero(db.traj_ids == tid)[:SEGMENTS_PER_BATCH]
        batches.append(db.take(rows))
    return db, batches


def test_warm_cache_beats_per_batch_construction(workload):
    db, batches = workload

    # Cold path: the pre-service idiom — build a fresh engine per batch.
    t0 = time.perf_counter()
    cold_modeled = 0.0
    cold_outcomes = []
    for queries in batches:
        search = DistanceThresholdSearch(db, method=METHOD, **PARAMS)
        outcome = search.run(queries, D)
        cold_modeled += outcome.modeled_seconds
        cold_outcomes.append(outcome)
    cold_wall = time.perf_counter() - t0

    # Warm path: one service, engine built once, then cache hits.
    service = QueryService(db, num_devices=1)
    t0 = time.perf_counter()
    responses = service.submit_batch([
        SearchRequest(queries=q, d=D, method=METHOD, params=PARAMS,
                      request_id=f"batch-{i}")
        for i, q in enumerate(batches)])
    warm_wall = time.perf_counter() - t0
    warm_modeled = sum(r.metrics.modeled_seconds for r in responses)

    # Same answers either way.
    for outcome, resp in zip(cold_outcomes, responses):
        assert resp.outcome.results.equivalent_to(outcome.results)

    # Exactly one miss (the first batch builds), all later batches hit.
    stats = service.stats()
    assert stats["cache"]["misses"] == 1
    assert stats["cache"]["hits"] == NUM_BATCHES - 1
    assert not responses[0].metrics.cache_hit
    assert all(r.metrics.cache_hit for r in responses[1:])

    cold_total = cold_wall + cold_modeled
    warm_total = warm_wall + warm_modeled
    speedup = cold_total / warm_total

    emit("service_throughput", "\n".join([
        f"Serving-layer throughput — {NUM_BATCHES} batches, "
        f"method={METHOD}",
        f"{'path':<12} {'wall (s)':>10} {'modeled (s)':>12} "
        f"{'total (s)':>10}",
        f"{'cold':<12} {cold_wall:>10.4f} {cold_modeled:>12.4f} "
        f"{cold_total:>10.4f}",
        f"{'warm':<12} {warm_wall:>10.4f} {warm_modeled:>12.4f} "
        f"{warm_total:>10.4f}",
        f"speedup: {speedup:.1f}x   cache: "
        f"{stats['cache']['hits']} hits / "
        f"{stats['cache']['misses']} miss",
    ]))

    assert speedup >= 5.0, (
        f"warm service only {speedup:.1f}x faster "
        f"(cold {cold_total:.3f}s vs warm {warm_total:.3f}s)")
