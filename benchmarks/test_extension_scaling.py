"""EXT — beyond-paper extension benchmarks.

Three studies of features the paper motivates but does not evaluate:

* multi-node cluster scaling (§III's deployment scenario);
* the hybrid CPU+GPU engine (§VI future work);
* the kNN search built on the same indexes (§VI future work).
"""

import numpy as np

from repro.distributed import GpuCluster
from repro.engines import HybridEngine
from repro.engines.gpu_temporal import GpuTemporalEngine
from repro.gpu.costmodel import CpuCostModel, GpuCostModel

from .conftest import emit


def test_cluster_scaling(benchmark, s3_runner):
    """Response time vs node count on the dense dataset."""
    db = s3_runner.database
    queries = s3_runner.queries
    d = 0.05
    model = GpuCostModel()

    def run():
        out = {}
        for nodes in (1, 2, 4, 8):
            cluster = GpuCluster(
                db, nodes, lambda s: GpuTemporalEngine(s, num_bins=1000))
            res, prof = cluster.search(queries, d)
            out[nodes] = (prof.modeled_time(model).total,
                          prof.imbalance(), len(res))
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["EXT — cluster scaling (Random-dense, d=0.05, GPUTemporal)",
             "=" * 58]
    t1 = out[1][0]
    for nodes, (t, imb, items) in sorted(out.items()):
        lines.append(f"{nodes} node(s): {t:.6f} s  speedup "
                     f"{t1 / t:5.2f}x  imbalance {imb:.2f}  "
                     f"{items} results")
    emit("extension_cluster_scaling", "\n".join(lines))

    sizes = [out[n][2] for n in (1, 2, 4, 8)]
    assert len(set(sizes)) == 1          # identical result sets
    assert out[8][0] < out[1][0]         # scaling actually helps
    assert out[8][0] > out[1][0] / 16    # but not super-linearly


def test_hybrid_beats_both_sides_near_crossover(benchmark, s2_runner):
    """At the CPU/GPU crossover, splitting the queries wins."""
    db = s2_runner.database
    queries = s2_runner.queries
    d = 1.5
    gm, cm = GpuCostModel(), CpuCostModel()
    gpu = s2_runner.engine("gpu_temporal")
    cpu = s2_runner.engine("cpu_rtree")

    def run():
        f = HybridEngine.balanced_split(gpu, cpu, queries, d,
                                        gpu_model=gm, cpu_model=cm)
        out = {}
        for frac in (0.0, f, 1.0):
            hybrid = HybridEngine(gpu, cpu, gpu_fraction=frac)
            _, prof = hybrid.search(queries, d)
            out[frac] = prof.modeled_time(gm, cm).total
        return f, out

    f, out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["EXT — hybrid CPU+GPU at the Merger crossover (d=1.5)",
             "=" * 53]
    for frac, t in sorted(out.items()):
        tag = " <- balanced" if frac == f else ""
        lines.append(f"gpu share {frac:4.2f}: {t:.6f} s{tag}")
    emit("extension_hybrid", "\n".join(lines))

    assert out[f] <= min(out[0.0], out[1.0]) * 1.05


def test_knn_extension(benchmark, s2_runner):
    """kNN via iterative deepening on the spatiotemporal index."""
    from repro.core.knn import TrajectoryKnn, knn_brute_force
    db = s2_runner.database
    queries = s2_runner.queries.take(
        np.arange(0, len(s2_runner.queries), 8))
    k = 5

    knn = TrajectoryKnn(db, method="gpu_temporal", num_bins=1000)

    def run():
        return knn.query(queries, k, exclude_same_trajectory=True)

    res = benchmark.pedantic(run, rounds=1, iterations=1)
    want = knn_brute_force(queries, db, k,
                           exclude_same_trajectory=True)
    np.testing.assert_allclose(res.distances, want.distances, atol=1e-9)
    full = int(np.count_nonzero(res.counts == k))
    emit("extension_knn",
         f"EXT — kNN (k={k}) on Merger via GPUTemporal deepening\n"
         f"{'=' * 52}\n"
         f"{len(queries)} query segments, {full} with full lists; "
         f"exact vs brute force: yes")
