"""MICRO — wall-clock micro-benchmarks of the simulator's primitives.

Unlike the figure benchmarks (which report *modeled* device seconds),
these measure the reproduction's own wall-clock throughput with
pytest-benchmark: the vectorized refinement kernel, index construction,
and schedule computation.  They guard the simulator against performance
regressions — at paper scale a 10x slower `compare_pairs` would make the
suite unusable.
"""

import numpy as np
import pytest

from repro.core.distance import compare_pairs
from repro.core.types import SegmentArray
from repro.indexes import (FlatGrid, RTree, SpatioTemporalIndex,
                           TemporalIndex)
from tests.conftest import make_walk_trajectories


@pytest.fixture(scope="module")
def db():
    return SegmentArray.from_trajectories(
        make_walk_trajectories(400, 60, seed=1, box=60.0))


def test_compare_pairs_throughput(benchmark, db):
    """Vectorized refinement of 1M pairs (the simulator's hot loop)."""
    rng = np.random.default_rng(0)
    n = 1_000_000
    q_idx = rng.integers(0, len(db), n)
    e_idx = rng.integers(0, len(db), n)

    result = benchmark(compare_pairs, db, db, q_idx, e_idx, 2.0)
    assert result.num_hits > 0
    # Regression guard: at least 2M pairs/s on any modern CPU.
    assert benchmark.stats["mean"] < 0.5


def test_fsg_build(benchmark, db):
    grid = benchmark(FlatGrid.build, db, 50)
    assert grid.num_nonempty_cells > 0


def test_temporal_build(benchmark, db):
    index = benchmark(TemporalIndex.build, db, 10_000)
    assert index.num_bins == 10_000


def test_spatiotemporal_build(benchmark, db):
    index = benchmark(SpatioTemporalIndex.build, db, 1_000, 4,
                      strict=False)
    assert index.num_subbins == 4


def test_rtree_str_build(benchmark, db):
    tree = benchmark(RTree.build, db, 4, 16, "str")
    assert tree.num_leaf_mbbs > 0


def test_rtree_guttman_build(benchmark, db):
    def build():
        return RTree.build(db, 4, 16, "guttman")

    tree = benchmark.pedantic(build, rounds=1, iterations=1)
    assert tree.num_leaf_mbbs > 0


def test_temporal_schedule_computation(benchmark, db):
    """Host-side schedule: the paper claims it's negligible; it is."""
    index = TemporalIndex.build(db, 10_000)
    q = db.sorted_by_start_time()

    lo, hi = benchmark(index.candidate_rows, q.ts, q.te)
    assert lo.shape == (len(db),)


def test_spatiotemporal_schedule_computation(benchmark, db):
    index = SpatioTemporalIndex.build(db, 1_000, 4, strict=False)
    q = db.sorted_by_start_time()

    sched = benchmark(index.make_schedule, q, 2.0)
    assert len(sched) == len(db)
