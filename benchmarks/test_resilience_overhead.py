"""Resilience overhead: fault hooks and health tracking must be ~free.

The serving layer now consults breakers, lane health, and (when wired)
a fault injector on every request and device operation.  On the warm-
cache ``submit_batch`` steady state, carrying a never-firing injector
through the whole gpu stack must cost under 5 % over a ``faults=None``
service — the hook is one ``is None`` test per operation when unwired,
and one spec scan when wired.  Min-of-N interleaved timing filters
machine noise, as in ``test_obs_overhead.py``.
"""

import time

import numpy as np
import pytest
from .conftest import emit

from repro.data import random_dataset
from repro.faults import FAULT_KINDS, FaultInjector, FaultSpec
from repro.service import QueryService, SearchRequest

METHOD = "gpu_temporal"
PARAMS = {"num_bins": 40}
D = 1.0
BATCH_SIZE = 4
REPEATS = 20
MAX_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def workload():
    db = random_dataset(scale=0.05, rng=np.random.default_rng(7))
    rng = np.random.default_rng(123)
    batches = []
    for _ in range(BATCH_SIZE):
        tid = rng.choice(np.unique(db.traj_ids))
        rows = np.flatnonzero(db.traj_ids == tid)[:12]
        batches.append(db.take(rows))
    return db, batches


def _requests(batches):
    return [SearchRequest(queries=q, d=D, method=METHOD,
                          params=dict(PARAMS), request_id=f"r{i}")
            for i, q in enumerate(batches)]


def _timed_batch(service, batches) -> float:
    reqs = _requests(batches)
    t0 = time.perf_counter()
    service.submit_batch(reqs)
    return time.perf_counter() - t0


def test_fault_hooks_overhead_under_five_percent(workload):
    db, batches = workload

    # One spec per fault kind, none of which ever activates: the full
    # per-operation spec scan runs, faults never fire.
    injector = FaultInjector(
        [FaultSpec(kind=kind, rate=0.0) for kind in FAULT_KINDS],
        seed=0)
    svc_plain = QueryService(db, num_devices=1)
    svc_hooked = QueryService(db, num_devices=1, faults=injector)
    # Warm both caches (and lazy imports) before timing.
    svc_plain.submit_batch(_requests(batches))
    svc_hooked.submit_batch(_requests(batches))

    base = hooked = float("inf")
    for _ in range(REPEATS):
        base = min(base, _timed_batch(svc_plain, batches))
        hooked = min(hooked, _timed_batch(svc_hooked, batches))

    # The hooked service really did evaluate the plan everywhere.
    assert injector.total_ops > 0
    assert injector.total_fired == 0
    # And both services answered everything cleanly.
    assert svc_plain.stats()["degradations"] == 0
    assert svc_hooked.stats()["degradations"] == 0

    overhead = hooked / base - 1.0
    emit("resilience_overhead",
         "fault-hook overhead (warm-cache submit_batch, "
         f"min of {REPEATS})\n"
         f"  faults=None:        {base * 1e3:9.3f} ms/batch\n"
         f"  never-firing hooks: {hooked * 1e3:9.3f} ms/batch\n"
         f"  overhead:           {overhead * 100:+7.2f} %  "
         f"(budget {MAX_OVERHEAD * 100:.0f} %)")
    assert overhead < MAX_OVERHEAD
