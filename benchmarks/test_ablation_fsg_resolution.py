"""T-FSG — §V-C in-text: GPUSpatial response time vs FSG resolution.

Paper findings: too coarse a grid costs selectivity (more comparisons,
buffer overflows, re-invocations); too fine a grid costs duplicates
(larger raw result sets transferred back); ~50 cells per dimension is the
sweet spot on Random; response time rises rapidly with d at any
resolution.
"""


from repro.experiments import series_table

from .conftest import emit

RESOLUTIONS = (10, 25, 50, 75, 100)
D_VALUES = (5.0, 15.0, 30.0)


def test_fsg_resolution_sweep(benchmark, s1_runner):
    def sweep():
        records = {}
        for res in RESOLUTIONS:
            for d in D_VALUES:
                rec, _ = s1_runner.run_one("gpu_spatial", d,
                                           cells_per_dim=res)
                records[(res, d)] = rec
        return records

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = {f"{res} cells/dim":
              [records[(res, d)].modeled_seconds for d in D_VALUES]
              for res in RESOLUTIONS}
    emit("ablation_fsg_resolution",
         series_table("T-FSG — GPUSpatial response time vs grid "
                      "resolution (Random)", list(D_VALUES), series))

    # Response time rises rapidly with d at every resolution.
    for res in RESOLUTIONS:
        ts = [records[(res, d)].modeled_seconds for d in D_VALUES]
        assert ts[-1] > 2.0 * ts[0]
    # Coarse grids do more comparisons (poor selectivity) than the
    # paper's chosen 50 cells/dim.
    for d in D_VALUES:
        assert records[(10, d)].comparisons \
            > records[(50, d)].comparisons
    # Finer grids inflate the raw result set via duplicates.
    d = D_VALUES[-1]
    raw_coarse = records[(25, d)].comparisons
    raw_fine = records[(100, d)].comparisons
    assert raw_fine != raw_coarse  # resolution genuinely matters
