"""T-BUF — §V-E in-text: effect of the result-buffer capacity on
Random-dense.

Paper measurement: growing the device result buffer from 5.0e7 to 9.2e7
items cuts response time by 65.76 % at d = 0.09 (the distance needing the
most kernel invocations), because the query set is processed in fewer
incremental rounds.
"""


from .conftest import emit


def test_result_buffer_effect(benchmark, s3_runner):
    base = s3_runner.scenario.result_buffer_items  # the 9.2e7-equivalent
    small = max(500, int(base * 5.0 / 9.2))        # the 5.0e7-equivalent

    def run():
        rec_small, _ = s3_runner.run_one("gpu_temporal", 0.09,
                                         result_buffer_items=small)
        rec_big, _ = s3_runner.run_one("gpu_temporal", 0.09,
                                       result_buffer_items=base)
        return rec_small, rec_big

    rec_small, rec_big = benchmark.pedantic(run, rounds=1, iterations=1)
    saving = 1.0 - rec_big.modeled_seconds / rec_small.modeled_seconds
    title = "T-BUF — result-buffer size effect at d=0.09 (Random-dense)"
    emit("ablation_result_buffer", "\n".join([
        title, "=" * len(title),
        f"5.0e7-equivalent buffer ({small} items): "
        f"{rec_small.modeled_seconds:.6f} s, "
        f"{rec_small.kernel_invocations} invocations",
        f"9.2e7-equivalent buffer ({base} items): "
        f"{rec_big.modeled_seconds:.6f} s, "
        f"{rec_big.kernel_invocations} invocations",
        f"response-time reduction: {100 * saving:.1f} % "
        "(paper: 65.76 %)"]))

    # The bigger buffer needs fewer invocations and is faster.
    assert rec_big.kernel_invocations < rec_small.kernel_invocations
    assert rec_big.modeled_seconds < rec_small.modeled_seconds
    # Results identical either way.
    assert rec_big.result_items == rec_small.result_items
    # The saving is substantial (paper: ~66 %; accept a broad band at
    # reduced scale).
    assert saving > 0.15
