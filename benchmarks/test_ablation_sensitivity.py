"""T-SENS — reproduction-added ablation: calibration sensitivity.

Re-prices the measured Fig. 5 profiles under every single-constant
0.5x/2x perturbation of the cost models and reports whether the headline
conclusion (GPUSpatioTemporal overtakes CPU-RTree within the Merger
sweep) survives — evidence the reproduction's conclusions are not
calibration artifacts.
"""


from repro.experiments.sensitivity import (collect_profiles,
                                           sensitivity_analysis)

from .conftest import emit


def test_calibration_sensitivity(benchmark, s2_runner):
    def run():
        profile_set = collect_profiles(
            s2_runner, ["cpu_rtree", "gpu_spatiotemporal"])
        return sensitivity_analysis(profile_set)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["T-SENS — does 'GPUSpatioTemporal overtakes CPU on Merger' "
             "survive constant perturbations?",
             "=" * 78]
    lines += [r.describe() for r in rows]
    survived = sum(1 for r in rows if r.crossover_d is not None)
    lines.append(f"\nconclusion holds at {survived}/{len(rows)} grid "
                 "points (baseline included)")
    emit("ablation_sensitivity", "\n".join(lines))

    assert rows[0].crossover_d is not None      # baseline conclusion
    assert survived >= len(rows) * 0.6          # robust majority
