"""T-RTREE — §V-B in-text: the CPU baseline's r (segments per MBB) sweep,
plus the index-construction variants this reproduction documents.

The paper executes CPU-RTree "with a range of values for r and only
report[s] on results for the r value that leads to the lowest response
time".  This benchmark reproduces that protocol on each dataset and also
reports the two construction ablations DESIGN.md calls out: Guttman
insertion vs STR bulk loading, and 3-D spatial vs 4-D spatiotemporal
boxes (see EXPERIMENTS.md for why the 3-D variant models the paper's
baseline on Random-dense).
"""


from repro.engines.cpu_rtree import CpuRTreeEngine
from repro.gpu.costmodel import CpuCostModel

from .conftest import emit

R_VALUES = (1, 2, 4, 8, 16)


def test_rtree_r_sweep(benchmark, s1_runner, s2_runner):
    model = CpuCostModel()

    def sweep():
        out = {}
        for name, runner, d in [("random", s1_runner, 25.0),
                                ("merger", s2_runner, 1.0)]:
            for r in R_VALUES:
                rec, _ = runner.run_one("cpu_rtree", d,
                                        segments_per_mbb=r)
                out[(name, r)] = rec.modeled_seconds
        return out

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["T-RTREE — CPU-RTree response time vs r (segments/MBB)",
             "=" * 56]
    for name in ("random", "merger"):
        row = [times[(name, r)] for r in R_VALUES]
        best = R_VALUES[row.index(min(row))]
        lines.append(f"{name:8s} " + "  ".join(
            f"r={r}:{t:.5f}s" for r, t in zip(R_VALUES, row))
            + f"   best r = {best}")
    emit("ablation_rtree_r", "\n".join(lines))

    # The sweep is a genuine trade-off: the best r is interior or at
    # least the endpoints are not uniformly optimal for both datasets.
    for name in ("random", "merger"):
        row = [times[(name, r)] for r in R_VALUES]
        assert min(row) < row[0] * 1.01 or min(row) < row[-1] * 1.01


def test_rtree_construction_variants(benchmark, s3_runner):
    """Guttman vs STR and 3-D vs 4-D on Random-dense: the stronger
    variants win — quantifying how much baseline strength the paper's
    Fig. 6 result presupposes giving up."""
    model = CpuCostModel()
    db = s3_runner.database
    queries = s3_runner.queries

    def run():
        out = {}
        for label, kw in [
            ("guttman-3d", dict(build_method="guttman",
                                temporal_axis=False)),
            ("guttman-4d", dict(build_method="guttman",
                                temporal_axis=True)),
            ("str-4d", dict(build_method="str", temporal_axis=True)),
        ]:
            engine = CpuRTreeEngine(db, segments_per_mbb=4, **kw)
            _, prof = engine.search(queries, 0.05)
            out[label] = (prof.modeled_time(model).total,
                          prof.comparisons, prof.node_visits)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["T-RTREE — construction variants at d=0.05 (Random-dense)",
             "=" * 58]
    for label, (t, cmp_, visits) in out.items():
        lines.append(f"{label:12s} t={t:.5f}s comparisons={cmp_} "
                     f"node_visits={visits}")
    emit("ablation_rtree_variants", "\n".join(lines))

    # 4-D boxes add temporal selectivity => far fewer refinements.
    assert out["guttman-4d"][1] < out["guttman-3d"][1]
    # STR packing is at least as good as insertion on visits.
    assert out["str-4d"][2] <= out["guttman-4d"][2]
