"""FIG4 — Fig. 4: S1 (Random), response time vs d for all four
implementations plus GPUSpatial's "optimistic" curve.

Paper shape to reproduce (§V-C): CPU-RTree best across all query
distances; GPUSpatial the best GPU scheme for d < 20 but non-scalable in
d (and not merely because of kernel re-invocation overhead — the
optimistic curve shows the same trend); GPUTemporal flat in d;
GPUSpatioTemporal below GPUTemporal.
"""

import pytest

from repro.experiments import records_to_series, series_table

from .conftest import emit

ENGINES = ["cpu_rtree", "gpu_spatial", "gpu_temporal",
           "gpu_spatiotemporal"]


@pytest.mark.parametrize("engine", ENGINES)
def test_fig4_engine_search(benchmark, s1_runner, engine):
    """Wall-clock of one representative search (d = 25) per engine."""
    s1_runner.engine(engine)  # build outside the timed region

    def run():
        rec, _ = s1_runner.run_one(engine, 25.0)
        return rec

    rec = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rec.result_items >= 0


def test_fig4_regenerate(benchmark, s1_runner):
    """Regenerate the full Fig. 4 series (modeled seconds)."""

    def sweep():
        return s1_runner.sweep(ENGINES)

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    d, series = records_to_series(records)
    _, optimistic = records_to_series(records, "optimistic_seconds")
    series["gpu_spatial (optimistic)"] = optimistic["gpu_spatial"]
    from repro.experiments.asciichart import line_chart
    emit("fig4_random",
         series_table("Fig. 4 — S1 Random: response time vs d "
                      "(modeled seconds)", d, series)
         + "\n\n" + line_chart(d, series, title="Fig. 4 (shape)"))

    # The paper's qualitative claims, asserted:
    cpu = series["cpu_rtree"]
    spatial = series["gpu_spatial"]
    temporal = series["gpu_temporal"]
    st = series["gpu_spatiotemporal"]
    # CPU best (or within noise of best) across the sweep.  At reduced
    # scale the CPU's candidate growth catches GPUTemporal's flat cost
    # near d = 50; at paper scale the GPU base cost is far larger, so
    # the paper's curve stays strictly below (see EXPERIMENTS.md).
    for i in range(len(d)):
        assert cpu[i] <= spatial[i] * 1.05
        assert cpu[i] <= temporal[i] * 1.5
    # GPUSpatial does not scale with d (>5x growth over the sweep) ...
    assert spatial[-1] / spatial[0] > 5.0
    # ... and the optimistic curve shows the same trend (§V-C).
    opt = series["gpu_spatial (optimistic)"]
    assert opt[-1] / opt[0] > 5.0
    # GPUTemporal response time does not depend on d (§V-C).
    assert max(temporal) / min(temporal) < 1.5
    # GPUSpatioTemporal outperforms GPUTemporal.
    assert all(a <= b for a, b in zip(st, temporal))
