"""FIG7 — Fig. 7: GPU/CPU response-time ratios across the three
datasets at application-relevant query distances.

Paper conclusion (§VI): "although the CPU is preferable for small and
sparse datasets, the GPU leads to significant improvements for large
and/or dense datasets unless query distances are small."
"""


from .conftest import emit


def test_fig7_regenerate(benchmark, s1_runner, s2_runner, s3_runner):
    runners = {
        "S1-random": (s1_runner, ["gpu_spatial", "gpu_temporal",
                                  "gpu_spatiotemporal"]),
        "S2-merger": (s2_runner, ["gpu_temporal", "gpu_spatiotemporal"]),
        "S3-random-dense": (s3_runner, ["gpu_temporal",
                                        "gpu_spatiotemporal"]),
    }

    def compute():
        rows = []
        for name, (runner, engines) in runners.items():
            for d in runner.scenario.application_d:
                cpu_rec, _ = runner.run_one("cpu_rtree", d)
                for eng in engines:
                    rec, _ = runner.run_one(eng, d)
                    rows.append((name, d, eng,
                                 rec.modeled_seconds
                                 / cpu_rec.modeled_seconds))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = ["Fig. 7 — GPU/CPU response-time ratios "
             "(<1 means the GPU engine wins)",
             "=" * 66]
    for name, d, eng, ratio in rows:
        lines.append(f"{name:18s} d={d:<8g} {eng:20s} {ratio:8.2f}x")
    emit("fig7_ratios", "\n".join(lines))

    ratio = {(name, d, eng): r for name, d, eng, r in rows}
    # Sparse Random: CPU preferable against GPUSpatial and GPUTemporal
    # (GPUSpatioTemporal lands near parity at reduced scale — a known
    # deviation recorded in EXPERIMENTS.md; the paper has it above 1).
    s1_d = s1_runner.scenario.application_d[0]
    assert ratio[("S1-random", s1_d, "gpu_spatial")] >= 1.0
    assert ratio[("S1-random", s1_d, "gpu_temporal")] >= 1.0
    assert ratio[("S1-random", s1_d, "gpu_spatiotemporal")] >= 0.5
    # Merger at the largest application distance: GPU wins.
    s2_d = max(s2_runner.scenario.application_d)
    assert ratio[("S2-merger", s2_d, "gpu_spatiotemporal")] < 1.0
    # Dense data at the larger application distance: GPU wins.
    s3_d = max(s3_runner.scenario.application_d)
    assert ratio[("S3-random-dense", s3_d, "gpu_spatiotemporal")] < 1.0
