"""FIG6 — Fig. 6: S3 (Random-dense) with the enlarged result buffer.

Paper shape (§V-E): CPU-RTree best only for the smallest distances
(paper: d <~ 0.02), outperformed by both GPU engines at larger d; the
dense data makes GPUSpatioTemporal default to the temporal scheme more
often as d grows.
"""

import pytest

from repro.experiments import records_to_series, series_table

from .conftest import emit

ENGINES = ["cpu_rtree", "gpu_temporal", "gpu_spatiotemporal"]


@pytest.mark.parametrize("engine", ENGINES)
def test_fig6_engine_search(benchmark, s3_runner, engine):
    """Wall-clock of one representative search (d = 0.05) per engine."""
    s3_runner.engine(engine)

    def run():
        rec, _ = s3_runner.run_one(engine, 0.05)
        return rec

    rec = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rec.result_items > 0


def test_fig6_regenerate(benchmark, s3_runner):
    def sweep():
        return s3_runner.sweep(ENGINES)

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    d, series = records_to_series(records)
    from repro.experiments.asciichart import line_chart
    emit("fig6_random_dense",
         series_table("Fig. 6 — S3 Random-dense: response time vs d "
                      "(modeled seconds)", d, series)
         + "\n\n" + line_chart(d, series, title="Fig. 6 (shape)"))

    cpu = series["cpu_rtree"]
    st = series["gpu_spatiotemporal"]
    temporal = series["gpu_temporal"]
    # CPU best at the smallest d ...
    assert cpu[0] < st[0]
    # ... but overtaken by GPUSpatioTemporal within the sweep and
    # clearly behind at d = 0.09 (paper: 223 % faster at d = 0.05).
    crossover = [dd for dd, a, b in zip(d, st, cpu) if a <= b]
    assert crossover and min(crossover) <= 0.06
    assert st[-1] < cpu[-1]
    # CPU response grows steeply with d on dense data.
    assert cpu[-1] / cpu[0] > 5.0
    # Defaulting to the temporal scheme rises with d (§V-E).
    defaults = [r.defaulted_queries for r in records
                if r.engine == "gpu_spatiotemporal"]
    assert defaults[-1] > defaults[0]
    # Buffer pressure: the largest d needs the most kernel invocations.
    invocations = [r.kernel_invocations for r in records
                   if r.engine == "gpu_temporal"]
    assert invocations[-1] == max(invocations) and invocations[-1] > 1
