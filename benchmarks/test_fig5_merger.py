"""FIG5 — Fig. 5: S2 (Merger), CPU-RTree vs GPUTemporal vs
GPUSpatioTemporal (GPUSpatial omitted, as in the paper).

Paper shape (§V-D): CPU-RTree best at low d, overtaken by
GPUSpatioTemporal at d ~ 1.5; GPUSpatioTemporal beats GPUTemporal across
the board by >= ~20 %; at d = 0.001 the GPU is ~4.3x slower than the CPU;
at d = 5 the GPU engines win.
"""

import pytest

from repro.experiments import records_to_series, series_table

from .conftest import emit

ENGINES = ["cpu_rtree", "gpu_temporal", "gpu_spatiotemporal"]


@pytest.mark.parametrize("engine", ENGINES)
def test_fig5_engine_search(benchmark, s2_runner, engine):
    """Wall-clock of one representative search (d = 1.5) per engine."""
    s2_runner.engine(engine)

    def run():
        rec, _ = s2_runner.run_one(engine, 1.5)
        return rec

    rec = benchmark.pedantic(run, rounds=1, iterations=1)
    assert rec.result_items > 0


def test_fig5_regenerate(benchmark, s2_runner):
    def sweep():
        return s2_runner.sweep(ENGINES)

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    d, series = records_to_series(records)
    from repro.experiments.asciichart import line_chart
    emit("fig5_merger",
         series_table("Fig. 5 — S2 Merger: response time vs d "
                      "(modeled seconds)", d, series)
         + "\n\n" + line_chart(d, series, title="Fig. 5 (shape)"))

    cpu = series["cpu_rtree"]
    temporal = series["gpu_temporal"]
    st = series["gpu_spatiotemporal"]
    # CPU best at the smallest distances; paper quotes the GPU 4.3x
    # slower at d = 0.001 (330.4 %) — we land within ~30 %.
    assert temporal[0] / cpu[0] == pytest.approx(4.30, rel=0.35)
    # GPUSpatioTemporal overtakes the CPU mid-sweep (paper: d ~ 1.5) and
    # stays ahead at the largest distances.
    crossover = [dd for dd, a, b in zip(d, st, cpu) if a <= b]
    assert crossover and 0.5 <= min(crossover) <= 3.0
    assert st[-1] < cpu[-1]
    # GPUSpatioTemporal outperforms GPUTemporal across the board
    # (paper: by at least 23.6 %).
    assert all(a < b for a, b in zip(st, temporal))
    # GPUTemporal's growth over the sweep stays moderate (paper: 2.8x,
    # driven by result volume + incremental processing).
    assert 1.5 < temporal[-1] / temporal[0] < 5.0
