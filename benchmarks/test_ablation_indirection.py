"""T-IND — §V-C in-text: the cost of GPUSpatioTemporal's extra
indirection.

Paper measurement: at d = 50 on Random (the point with the most
indirections), GPUTemporal takes 1.21 s vs 1.36 s for GPUSpatioTemporal
with v = 1 subbin — a 12.4 % increase attributable purely to reading the
entry id through the X/Y/Z array before loading the segment.
"""


from .conftest import emit


def test_indirection_overhead(benchmark, s1_runner):
    def run():
        rec_t, _ = s1_runner.run_one("gpu_temporal", 50.0)
        rec_st, _ = s1_runner.run_one("gpu_spatiotemporal", 50.0,
                                      num_subbins=1)
        return rec_t, rec_st

    rec_t, rec_st = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = (rec_st.modeled_seconds - rec_t.modeled_seconds) \
        / rec_t.modeled_seconds
    title = "T-IND — extra-indirection overhead at d=50 (Random)"
    emit("ablation_indirection", "\n".join([
        title, "=" * len(title),
        f"GPUTemporal:              {rec_t.modeled_seconds:.6f} s",
        f"GPUSpatioTemporal (v=1):  {rec_st.modeled_seconds:.6f} s",
        f"overhead: {100 * overhead:.1f} %   (paper: 12.4 %)"]))

    # Identical candidate sets — v=1 changes only the access path.
    assert rec_st.comparisons == rec_t.comparisons
    # Positive overhead in the paper's ballpark (a few to ~25 %).
    assert 0.0 < overhead < 0.30
