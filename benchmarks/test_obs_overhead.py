"""Telemetry overhead: instrumented vs disabled warm-cache serving.

The observability layer (ISSUE: observability) must be cheap enough to
leave on: on a warm-cache ``submit_batch`` workload — the steady state
a long-lived service spends its life in — the wall-clock cost of full
telemetry (spans, metrics, events) must stay under 5 % of the
uninstrumented run.  Min-of-N timing on both sides filters scheduler
noise.
"""

import time

import numpy as np
import pytest
from .conftest import emit

from repro.data import random_dataset
from repro.obs import Telemetry
from repro.service import QueryService, SearchRequest

METHOD = "gpu_temporal"
PARAMS = {"num_bins": 40}
D = 1.0
BATCH_SIZE = 4
REPEATS = 20
MAX_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def workload():
    db = random_dataset(scale=0.05, rng=np.random.default_rng(7))
    rng = np.random.default_rng(123)
    batches = []
    for _ in range(BATCH_SIZE):
        tid = rng.choice(np.unique(db.traj_ids))
        rows = np.flatnonzero(db.traj_ids == tid)[:12]
        batches.append(db.take(rows))
    return db, batches


def _requests(batches):
    return [SearchRequest(queries=q, d=D, method=METHOD,
                          params=dict(PARAMS), request_id=f"r{i}")
            for i, q in enumerate(batches)]


def _timed_batch(service, batches) -> float:
    reqs = _requests(batches)
    t0 = time.perf_counter()
    service.submit_batch(reqs)
    return time.perf_counter() - t0


def test_telemetry_overhead_under_five_percent(workload):
    db, batches = workload

    svc_off = QueryService(db, num_devices=1,
                           telemetry=Telemetry(enabled=False))
    svc_on = QueryService(db, num_devices=1)
    # Warm both caches (and lazy imports) before timing.
    svc_off.submit_batch(_requests(batches))
    svc_on.submit_batch(_requests(batches))

    # Interleave the two services so machine drift (frequency scaling,
    # competing processes) hits both sides equally; min-of-N filters
    # the rest.
    base = instrumented = float("inf")
    for _ in range(REPEATS):
        base = min(base, _timed_batch(svc_off, batches))
        instrumented = min(instrumented, _timed_batch(svc_on, batches))

    # The instrumented service really did record everything.
    assert svc_on.telemetry.tracer.roots
    assert len(svc_on.telemetry.events) >= BATCH_SIZE
    assert svc_on.telemetry.metrics.counter(
        "repro_requests_total").total() > 0
    assert not svc_off.telemetry.tracer.roots

    overhead = instrumented / base - 1.0
    emit("obs_overhead",
         "telemetry overhead (warm-cache submit_batch, "
         f"min of {REPEATS})\n"
         f"  disabled:     {base * 1e3:9.3f} ms/batch\n"
         f"  instrumented: {instrumented * 1e3:9.3f} ms/batch\n"
         f"  overhead:     {overhead * 100:+7.2f} %  "
         f"(budget {MAX_OVERHEAD * 100:.0f} %)")
    assert overhead < MAX_OVERHEAD
