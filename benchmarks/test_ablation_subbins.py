"""T-SUBB — §V-C/V-D/V-E in-text: GPUSpatioTemporal vs subbin count v.

Paper findings: at low d more subbins help (queries rarely straddle a
subbin boundary); as d grows, queries overlap several subbins and default
to the temporal scheme, so fewer subbins win; on the dense dataset the
default rate is high even for small v (40 % at v=2, d=0.03 in the paper).
"""


from repro.experiments import series_table

from .conftest import emit

SUBBINS = (1, 2, 4, 8)


def test_subbin_sweep_random(benchmark, s1_runner):
    d_values = (5.0, 25.0, 50.0)

    def sweep():
        out = {}
        for v in SUBBINS:
            for d in d_values:
                rec, _ = s1_runner.run_one(
                    "gpu_spatiotemporal", d, num_subbins=v,
                    strict_subbins=False)
                out[(v, d)] = rec
        return out

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    series = {f"v={v}": [records[(v, d)].modeled_seconds
                         for d in d_values] for v in SUBBINS}
    emit("ablation_subbins_random",
         series_table("T-SUBB — GPUSpatioTemporal vs subbin count "
                      "(Random)", list(d_values), series))

    # At the smallest d, subbins beat v=1 (pure indirection overhead).
    assert records[(4, 5.0)].modeled_seconds \
        < records[(1, 5.0)].modeled_seconds
    # Defaulting rises with d for any v > 1.
    for v in SUBBINS[1:]:
        defs = [records[(v, d)].defaulted_queries for d in d_values]
        assert defs[-1] >= defs[0]


def test_subbin_default_rate_dense(benchmark, s3_runner):
    """Dense data defaults much more (the §V-E observation)."""

    def sweep():
        out = {}
        for v in (2, 4):
            for d in (0.03, 0.09):
                rec, _ = s3_runner.run_one(
                    "gpu_spatiotemporal", d, num_subbins=v,
                    strict_subbins=False)
                out[(v, d)] = rec
        return out

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    nq = len(s3_runner.queries)
    lines = ["T-SUBB — default-to-temporal rate on Random-dense",
             "=" * 50]
    for (v, d), rec in sorted(records.items()):
        lines.append(f"v={v} d={d}: "
                     f"{100.0 * rec.defaulted_queries / nq:5.1f}% "
                     f"defaulted")
    emit("ablation_subbins_dense", "\n".join(lines))

    # More subbins => higher default probability at fixed d; larger d
    # => higher default probability at fixed v.
    assert records[(4, 0.09)].defaulted_queries \
        >= records[(2, 0.09)].defaulted_queries
    assert records[(4, 0.09)].defaulted_queries \
        >= records[(4, 0.03)].defaulted_queries
    assert records[(4, 0.09)].defaulted_queries > 0
