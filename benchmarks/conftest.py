"""Shared infrastructure for the figure/table regeneration benchmarks.

Each benchmark module regenerates one paper artifact (DESIGN.md §4).  The
scenario runners are session-scoped — the dataset is generated and each
index built exactly once — and every regenerated series is both printed
and written under ``results/`` so EXPERIMENTS.md entries are traceable to
a file.

Scale: ``REPRO_SCALE`` (default 0.02).  At the default the whole suite
runs in minutes; raising the scale toward 1.0 approaches the paper's
instance sizes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import (ExperimentRunner, records_to_series,
                               scenario_s1_random, scenario_s2_merger,
                               scenario_s3_random_dense, series_table)

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def s1_runner() -> ExperimentRunner:
    return ExperimentRunner(scenario_s1_random())


@pytest.fixture(scope="session")
def s2_runner() -> ExperimentRunner:
    return ExperimentRunner(scenario_s2_merger())


@pytest.fixture(scope="session")
def s3_runner() -> ExperimentRunner:
    return ExperimentRunner(scenario_s3_random_dense())


def emit(name: str, text: str) -> None:
    """Print a regenerated artifact and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n[written to results/{name}.txt]")


def emit_records(name: str, title: str, records) -> None:
    d, series = records_to_series(records)
    emit(name, series_table(title, d, series))
